//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of test values. Unlike real proptest there is no value
/// tree and no shrinking: a strategy is exactly "something that can draw
/// a value from an RNG".
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A type-erased, cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals act as regex-like generators (see [`crate::string`]).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_pattern(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn just_yields_value() {
        let mut rng = TestRng::for_test("just");
        assert_eq!(Just(7).generate(&mut rng), 7);
    }

    #[test]
    fn map_applies() {
        let mut rng = TestRng::for_test("map");
        let doubled = (1i64..5).prop_map(|v| v * 2).generate(&mut rng);
        assert!(doubled % 2 == 0 && (2..10).contains(&doubled));
    }

    #[test]
    fn inclusive_range_hits_endpoint() {
        let mut rng = TestRng::for_test("inclusive");
        let mut saw_max = false;
        for _ in 0..200 {
            let v = (1u32..=3).generate(&mut rng);
            assert!((1..=3).contains(&v));
            saw_max |= v == 3;
        }
        assert!(saw_max);
    }

    #[test]
    fn tuple_generates_elementwise() {
        let mut rng = TestRng::for_test("tuple");
        let (a, b, c) = (0i64..4, Just("x"), 1u8..2).generate(&mut rng);
        assert!((0..4).contains(&a));
        assert_eq!(b, "x");
        assert_eq!(c, 1);
    }

    #[test]
    fn full_i64_range_works() {
        let mut rng = TestRng::for_test("fullrange");
        let v = (i64::MIN..i64::MAX).generate(&mut rng);
        let _ = v; // any value is in range by construction
    }
}
