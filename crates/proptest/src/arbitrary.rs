//! The [`Arbitrary`] trait and `any::<T>()`.

use crate::sample::Index;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool()
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII printable, occasionally any scalar value.
        if rng.below(8) == 0 {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
        } else {
            char::from_u32(0x20 + rng.below(0x5F) as u32).expect("printable ascii")
        }
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T` (`any::<i64>()`, `any::<bool>()`,
/// `any::<prop::sample::Index>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut rng = TestRng::for_test("bool");
        let strat = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }

    #[test]
    fn index_is_usable() {
        let mut rng = TestRng::for_test("index");
        let i = any::<Index>().generate(&mut rng);
        assert!(i.index(10) < 10);
    }
}
