//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specification for generated collections: `[min, max)` like
/// `Range<usize>`, or an exact length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// A strategy generating `Vec`s of `element` values.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Vec strategy with a size range (`vec(strategy, 1..64)` or
/// `vec(strategy, 24)`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_size() {
        let mut rng = TestRng::for_test("fixed");
        assert_eq!(vec(0i64..5, 24).generate(&mut rng).len(), 24);
    }

    #[test]
    fn ranged_size() {
        let mut rng = TestRng::for_test("ranged");
        for _ in 0..100 {
            let v = vec(0i64..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
