//! A vendored, zero-dependency stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `proptest` cannot be fetched. This crate implements the *generation*
//! subset of proptest's API that the workspace's property tests use:
//! strategies (ranges, tuples, `Just`, unions, mapping, collections,
//! regex-like string patterns), `any::<T>()`, `prop::sample::Index`, and
//! the `proptest!` / `prop_assert*!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message but is not minimized.
//! * **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name (plus the `PROPTEST_SEED` environment variable when
//!   set), so runs are reproducible by default.
//! * **Regex strategies** support the subset used here: literal
//!   characters, character classes (`[a-z0-9_.-]`), the `\PC`
//!   printable-character escape, and `{m,n}` / `{n}` repetition.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Mirror of proptest's `prop` facade module (`prop::sample::Index`, …).
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::sample;
    pub use crate::strategy;
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Mirrors proptest's macro of the same name:
/// an optional `#![proptest_config(..)]` header followed by `#[test]`
/// functions whose arguments are drawn from strategies with `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                // Rejections (prop_assume!) retry with fresh inputs, with a
                // generous bound so a pathological filter cannot hang.
                let max_attempts = config.cases.saturating_mul(20).max(100);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(message)) => {
                            panic!(
                                "property '{}' failed after {} passing case(s): {}",
                                stringify!($name),
                                accepted,
                                message
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case (drawing fresh inputs) when the assumption
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(v in 10i64..20) {
            prop_assert!((10..20).contains(&v));
        }

        #[test]
        fn tuples_and_maps_compose(
            s in (0i64..5, 0i64..5).prop_map(|(a, b)| a + b)
        ) {
            prop_assert!((0..=8).contains(&s));
        }

        #[test]
        fn vec_sizes_respect_range(v in crate::collection::vec(0i64..3, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn assume_rejects_without_failing(v in 0i64..10) {
            prop_assume!(v % 2 == 0);
            prop_assert!(v % 2 == 0);
        }

        #[test]
        fn regex_class_pattern(s in "[a-z][a-z0-9_.-]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9 * 4);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn printable_pattern_is_printable(s in "\\PC{0,20}") {
            prop_assert!(s.chars().all(|c| !c.is_control()));
        }

        #[test]
        fn oneof_picks_each_arm(v in prop_oneof![Just(1i64), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn index_maps_into_len(i in any::<prop::sample::Index>()) {
            prop_assert!(i.index(7) < 7);
        }
    }

    #[test]
    fn boxed_strategies_are_cloneable() {
        let s = crate::strategy::Just(5i64).boxed();
        let t = s.clone();
        let mut rng = crate::test_runner::TestRng::for_test("clone");
        use crate::strategy::Strategy;
        assert_eq!(s.generate(&mut rng), 5);
        assert_eq!(t.generate(&mut rng), 5);
    }
}
