//! End-to-end tests of the `fpgatest serve` daemon over real TCP:
//! crash/hang isolation, design-cache behavior under concurrent
//! clients, graceful drain, and the bit-identity contract between
//! cached and freshly compiled designs.

use fpgatest::cache::DesignCache;
use fpgatest::flow::{FlowOptions, TestFlow};
use fpgatest::serve::{Client, ClientError, JobSpec, ServeOptions, Server};
use fpgatest::stimulus::Stimulus;
use fpgatest::telemetry::Json;
use fpgatest::workloads;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SCALE_SRC: &str = "mem inp[8]; mem out[8];
     void main() { int i; for (i = 0; i < 8; i = i + 1) { out[i] = inp[i] * 3; } }";

fn scale_job() -> JobSpec {
    JobSpec::test("scale", SCALE_SRC)
        .stimulus("inp", Stimulus::from_values([1, 2, 3, 4, 5, 6, 7, 8]))
}

fn start_server(options: ServeOptions) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", options).expect("bind test daemon");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn cache_counter(stats: &Json, name: &str) -> u64 {
    stats
        .get("cache")
        .and_then(|c| c.get(name))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats carries cache.{name}: {}", stats.emit()))
}

/// A panicking job and a wall-clock-hung job get their taxonomy
/// verdicts (crash/3, timeout/4) while the daemon keeps serving other
/// clients' jobs on the remaining workers.
#[test]
fn daemon_survives_crashing_and_hanging_jobs() {
    let (addr, server) = start_server(ServeOptions {
        workers: 3,
        ..ServeOptions::default()
    });

    let mut client = Client::connect(&addr).expect("connect");

    let mut crasher = scale_job();
    crasher.planted_panic = true;
    let crashed = client.run_job(&crasher).expect("crash job completes");
    assert_eq!(crashed.verdict, "crash");
    assert_eq!(crashed.exit_code, 3);
    assert!(
        crashed.detail.contains("planted panic"),
        "panic message survives isolation: {}",
        crashed.detail
    );

    // A big design with a 1 ms wall budget is guaranteed to trip the
    // watchdog; the worker abandons the thread and moves on.
    let mut hog = JobSpec::test("fdct-hog", &workloads::fdct_source(256))
        .stimulus("img", Stimulus::from_values(workloads::test_image(256)));
    hog.width = Some(32);
    hog.wall_ms = Some(1);
    let hung = client.run_job(&hog).expect("hung job completes");
    assert_eq!(hung.verdict, "timeout");
    assert_eq!(hung.exit_code, 4);

    // The daemon is still healthy: a normal job passes afterwards.
    let ok = client.run_job(&scale_job()).expect("healthy job completes");
    assert_eq!(ok.verdict, "pass");
    assert_eq!(ok.exit_code, 0);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

/// Re-submitting the same design hits the cache: one miss (the
/// compile), then hits only.
#[test]
fn second_submission_skips_the_compile() {
    let (addr, server) = start_server(ServeOptions::default());
    let mut client = Client::connect(&addr).expect("connect");

    for _ in 0..3 {
        let outcome = client.run_job(&scale_job()).expect("job completes");
        assert_eq!(outcome.verdict, "pass");
    }

    let stats = client.stats().expect("stats");
    assert_eq!(cache_counter(&stats, "misses"), 1, "exactly one compile");
    assert_eq!(cache_counter(&stats, "hits"), 2, "re-runs are cache hits");

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

/// Two clients racing the same design: single-flight compilation means
/// one miss total — the second request waits and reuses the result.
#[test]
fn concurrent_clients_share_one_compile() {
    let (addr, server) = start_server(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    });

    let threads: Vec<_> = (0..2)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                client.run_job(&scale_job()).expect("job completes").verdict
            })
        })
        .collect();
    for t in threads {
        assert_eq!(t.join().expect("client thread"), "pass");
    }

    let mut control = Client::connect(&addr).expect("connect control");
    let stats = control.stats().expect("stats");
    assert_eq!(cache_counter(&stats, "misses"), 1, "one compile for both");
    assert_eq!(cache_counter(&stats, "hits"), 1, "the other run reused it");

    control.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

/// Shared buffer the event stream is copied into.
#[derive(Clone, Default)]
struct EventTap(Arc<Mutex<Vec<u8>>>);

impl Write for EventTap {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().expect("tap lock").extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Shutdown drains the in-flight job (here: one that hangs until its
/// wall watchdog), rejects new submissions with the typed `draining`
/// error, and the event-streaming connection still ends with the
/// serve-level `campaign-finished` event.
#[test]
fn shutdown_drains_inflight_and_rejects_new_jobs() {
    let (addr, server) = start_server(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });

    // Occupy the only worker for ~600 ms with a job that hangs until
    // its wall-clock watchdog trips.
    let mut hog = JobSpec::test("fdct-hog", &workloads::fdct_source(256))
        .stimulus("img", Stimulus::from_values(workloads::test_image(256)));
    hog.width = Some(32);
    hog.wall_ms = Some(600);
    hog.events = true;

    let tap = EventTap::default();
    let mut submitter = Client::connect(&addr).expect("connect submitter");
    submitter.stream_events_to(Box::new(tap.clone()));
    let id = submitter.submit(&hog).expect("submit hog");
    std::thread::sleep(Duration::from_millis(100));

    // Shutdown from a second connection; it blocks until the drain
    // completes, so run it on its own thread.
    let drainer = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut client = Client::connect(&addr).expect("connect drainer");
            client.shutdown().expect("shutdown acknowledges")
        }
    });
    std::thread::sleep(Duration::from_millis(150));

    // While the drain waits on the hog, new submissions get the typed
    // rejection.
    let mut late = Client::connect(&addr).expect("connect latecomer");
    match late.submit(&scale_job()) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "draining"),
        other => panic!("draining server must reject submissions, got {other:?}"),
    }

    // The in-flight job still completes (as a timeout) and the stream
    // still closes with the serve-level campaign-finished event.
    let outcome = submitter.wait(id).expect("hog outcome");
    assert_eq!(outcome.verdict, "timeout");
    assert_eq!(outcome.exit_code, 4);

    let ack = drainer.join().expect("drainer thread");
    assert_eq!(ack.get("finished").and_then(Json::as_u64), Some(1));
    server.join().expect("server thread").expect("server run");

    let bytes = tap.0.lock().expect("tap lock").clone();
    let text = String::from_utf8(bytes).expect("events are utf-8");
    let last = text.lines().last().expect("at least one event line");
    let event = Json::parse(last).expect("event line parses");
    assert_eq!(
        event.get("event").and_then(Json::as_str),
        Some("campaign-finished"),
        "stream ends with campaign-finished: {last}"
    );
    assert_eq!(event.get("kind").and_then(Json::as_str), Some("serve"));
}

/// The contract the cache rests on: two back-to-back runs of one
/// cached prepared design are bit-identical — memories, cycle counts,
/// verdicts — to two independent fresh compiles.
#[test]
fn cached_runs_match_fresh_compiles_bit_for_bit() {
    let options = FlowOptions::default();
    let stimuli = vec![(
        "inp".to_string(),
        Stimulus::from_values([1, 2, 3, 4, 5, 6, 7, 8]),
    )];

    let cache = DesignCache::new(4);
    let prepared = cache
        .get_or_compile("scale", SCALE_SRC, &options.compile)
        .expect("compiles");
    let cached_a = prepared.run(&stimuli, &options).expect("cached run 1");
    let cached_b = prepared.run(&stimuli, &options).expect("cached run 2");

    let fresh_a = TestFlow::new("scale", SCALE_SRC)
        .stimulus("inp", Stimulus::from_values([1, 2, 3, 4, 5, 6, 7, 8]))
        .run()
        .expect("fresh run 1");
    let fresh_b = TestFlow::new("scale", SCALE_SRC)
        .stimulus("inp", Stimulus::from_values([1, 2, 3, 4, 5, 6, 7, 8]))
        .run()
        .expect("fresh run 2");

    for (label, report) in [
        ("cached run 2", &cached_b),
        ("fresh run 1", &fresh_a),
        ("fresh run 2", &fresh_b),
    ] {
        assert_eq!(report.passed, cached_a.passed, "{label}: verdict");
        assert_eq!(report.sim_mems, cached_a.sim_mems, "{label}: simulated memories");
        assert_eq!(report.golden_mems, cached_a.golden_mems, "{label}: golden memories");
        assert_eq!(
            report.runs.iter().map(|r| (&r.name, r.cycles)).collect::<Vec<_>>(),
            cached_a.runs.iter().map(|r| (&r.name, r.cycles)).collect::<Vec<_>>(),
            "{label}: per-configuration cycle counts"
        );
    }
    assert!(cached_a.passed, "the scale design passes");
}
