//! Property tests over the full verification flow and the file formats.
//!
//! The heavyweight property: on *random programs*, the compiler-generated
//! hardware, simulated event by event, must leave exactly the memory
//! contents the golden software reference computes. Every pass is an
//! independent end-to-end cross-check of compiler + stylesheets + netlist
//! loader + simulator + control units.

use fpgatest::flow::TestFlow;
use fpgatest::stimulus::{self, Stimulus};
use proptest::prelude::*;

fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        (0i64..50).prop_map(|v| v.to_string()),
        prop_oneof![Just("v0"), Just("v1"), Just("v2")].prop_map(str::to_string),
        (0i64..8).prop_map(|i| format!("inp[{i}]")),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            leaf,
            (
                sub.clone(),
                prop_oneof![
                    Just("+"),
                    Just("-"),
                    Just("*"),
                    Just("&"),
                    Just("|"),
                    Just("^"),
                    Just(">>"),
                ],
                sub.clone()
            )
                .prop_map(|(a, op, b)| format!("({a} {op} {b})")),
            sub.prop_map(|a| format!("(~{a})")),
        ]
        .boxed()
    }
}

fn arb_stmt() -> BoxedStrategy<String> {
    let var = prop_oneof![Just("v0"), Just("v1"), Just("v2")];
    prop_oneof![
        (var.clone(), arb_expr(2)).prop_map(|(v, e)| format!("{v} = {e};")),
        (arb_expr(1), arb_expr(2)).prop_map(|(a, e)| format!("out[({a}) & 7] = {e};")),
        (var, 1i64..4, arb_expr(1)).prop_map(|(v, n, e)| {
            format!("for ({v} = 0; {v} < {n}; {v} = {v} + 1) {{ out[{v}] = {e}; }}")
        }),
        (arb_expr(1), arb_expr(1)).prop_map(|(a, b)| {
            format!("if (({a}) < ({b})) {{ v0 = {a}; }} else {{ v1 = {b}; }}")
        }),
    ]
    .boxed()
}

fn render(stmts: &[String]) -> String {
    let mut src =
        String::from("mem inp[8];\nmem out[8];\nvoid main() {\nint v0 = 1;\nint v1 = 2;\nint v2 = 3;\n");
    for stmt in stmts {
        src.push_str(stmt);
        src.push('\n');
    }
    src.push('}');
    src
}

fn flow(src: &str) -> TestFlow {
    TestFlow::new("gen", src)
        .stimulus("inp", Stimulus::from_values([9, -3, 14, 0, 27, -8, 5, 1]))
        .stimulus("out", Stimulus::from_values([0; 8]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated hardware == golden software, word for word, on random
    /// programs — through the complete XML/stylesheet/netlist path.
    #[test]
    fn hardware_matches_golden_on_random_programs(
        stmts in proptest::collection::vec(arb_stmt(), 2..6)
    ) {
        let src = render(&stmts);
        let report = flow(&src).run().expect("flow runs");
        prop_assert!(report.passed, "flow failed for:\n{}\n{}", src, report.render());
    }

    /// The same holds with the optimizer enabled, and the memory contents
    /// agree with the unoptimized run.
    #[test]
    fn optimized_hardware_matches_too(
        stmts in proptest::collection::vec(arb_stmt(), 2..5)
    ) {
        let src = render(&stmts);
        let plain = flow(&src).run().expect("flow runs");
        let optimized = flow(&src).with_optimize(true).run().expect("flow runs");
        prop_assert!(plain.passed && optimized.passed);
        prop_assert_eq!(&plain.sim_mems["out"], &optimized.sim_mems["out"]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stimulus files round-trip: emit(parse) preserves every word.
    #[test]
    fn stimulus_roundtrip(words in proptest::collection::vec(
        proptest::option::of(-100_000i64..100_000), 1..64
    )) {
        let image: Vec<Option<i64>> = words;
        let text = stimulus::emit("m", &image);
        let parsed = stimulus::parse(&text).unwrap();
        prop_assert_eq!(parsed.mem.as_deref(), Some("m"));
        let mut back = vec![None; image.len()];
        parsed.apply(&mut back).unwrap();
        prop_assert_eq!(back, image);
    }

    /// The stimulus parser never panics on arbitrary text.
    #[test]
    fn stimulus_parser_never_panics(text in "\\PC{0,120}") {
        let _ = stimulus::parse(&text);
    }

    /// Memory diffing is reflexive and complete.
    #[test]
    fn memcmp_properties(
        a in proptest::collection::vec(proptest::option::of(-100i64..100), 1..32),
        flips in proptest::collection::vec(any::<prop::sample::Index>(), 0..4)
    ) {
        use fpgatest::memcmp::diff_images;
        prop_assert!(diff_images("m", &a, &a.clone()).is_empty());
        let mut b = a.clone();
        let mut flipped = std::collections::BTreeSet::new();
        for index in flips {
            let i = index.index(b.len());
            b[i] = Some(b[i].map_or(0, |v| v + 1));
            if b[i] != a[i] {
                flipped.insert(i);
            }
        }
        let diffs = diff_images("m", &a, &b);
        let addrs: std::collections::BTreeSet<usize> = diffs.iter().map(|d| d.addr).collect();
        prop_assert_eq!(addrs, flipped);
    }
}
