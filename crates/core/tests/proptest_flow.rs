//! Property tests over the full verification flow and the file formats.
//!
//! The heavyweight property: on *random programs*, the compiler-generated
//! hardware, simulated event by event, must leave exactly the memory
//! contents the golden software reference computes. Every pass is an
//! independent end-to-end cross-check of compiler + stylesheets + netlist
//! loader + simulator + control units.

use fpgafuzz::gen::{generate_case, Budget, Case};
use fpgatest::flow::TestFlow;
use fpgatest::stimulus::{self, Stimulus};
use proptest::prelude::*;

/// Random programs come from the fuzzer's valid-by-construction generator
/// rather than ad-hoc string templates: a `(seed, index)` pair fully
/// determines the case, so any failure reproduces with
/// `fpgafuzz repro --seed S --index I`.
fn arb_case() -> impl Strategy<Value = Case> {
    (any::<u64>(), 0u64..1024).prop_map(|(seed, index)| {
        generate_case(seed, index, &Budget::default()).expect("generator emits valid programs")
    })
}

fn flow(case: &Case) -> TestFlow {
    let mut flow = TestFlow::new("gen", &case.source);
    for (mem, values) in &case.stimuli {
        flow = flow.stimulus(mem, Stimulus::from_values(values.iter().copied()));
    }
    flow
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Generated hardware == golden software, word for word, on random
    /// programs — through the complete XML/stylesheet/netlist path.
    #[test]
    fn hardware_matches_golden_on_random_programs(case in arb_case()) {
        let report = flow(&case).run().expect("flow runs");
        prop_assert!(report.passed, "flow failed for:\n{}\n{}", case.source, report.render());
    }

    /// The same holds with the optimizer enabled, and the memory contents
    /// agree with the unoptimized run.
    #[test]
    fn optimized_hardware_matches_too(case in arb_case()) {
        let plain = flow(&case).run().expect("flow runs");
        let optimized = flow(&case).with_optimize(true).run().expect("flow runs");
        prop_assert!(plain.passed && optimized.passed);
        for (mem, _) in &case.stimuli {
            prop_assert_eq!(&plain.sim_mems[mem], &optimized.sim_mems[mem]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Stimulus files round-trip: emit(parse) preserves every word.
    #[test]
    fn stimulus_roundtrip(words in proptest::collection::vec(
        proptest::option::of(-100_000i64..100_000), 1..64
    )) {
        let image: Vec<Option<i64>> = words;
        let text = stimulus::emit("m", &image);
        let parsed = stimulus::parse(&text).unwrap();
        prop_assert_eq!(parsed.mem.as_deref(), Some("m"));
        let mut back = vec![None; image.len()];
        parsed.apply(&mut back).unwrap();
        prop_assert_eq!(back, image);
    }

    /// The stimulus parser never panics on arbitrary text.
    #[test]
    fn stimulus_parser_never_panics(text in "\\PC{0,120}") {
        let _ = stimulus::parse(&text);
    }

    /// Memory diffing is reflexive and complete.
    #[test]
    fn memcmp_properties(
        a in proptest::collection::vec(proptest::option::of(-100i64..100), 1..32),
        flips in proptest::collection::vec(any::<prop::sample::Index>(), 0..4)
    ) {
        use fpgatest::memcmp::diff_images;
        prop_assert!(diff_images("m", &a, &a.clone()).is_empty());
        let mut b = a.clone();
        let mut flipped = std::collections::BTreeSet::new();
        for index in flips {
            let i = index.index(b.len());
            b[i] = Some(b[i].map_or(0, |v| v + 1));
            if b[i] != a[i] {
                flipped.insert(i);
            }
        }
        let diffs = diff_images("m", &a, &b);
        let addrs: std::collections::BTreeSet<usize> = diffs.iter().map(|d| d.addr).collect();
        prop_assert_eq!(addrs, flipped);
    }
}
