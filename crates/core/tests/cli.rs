//! Integration tests of the `fpgatest` command-line binary.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fpgatest"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpgatest_cli_{name}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn write_demo(dir: &Path) {
    std::fs::write(
        dir.join("prog.src"),
        "mem inp[4]; mem out[4];
         void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = inp[i] * 2; } }",
    )
    .unwrap();
    std::fs::write(dir.join("inp.stim"), "0: 10\n1: 20\n2: 30\n3: 40\n").unwrap();
}

#[test]
fn help_and_figure1() {
    let out = bin().arg("--help").output().unwrap();
    assert!(out.status.success());

    let out = bin().arg("figure1").output().unwrap();
    assert!(out.status.success());
    let dot = String::from_utf8(out.stdout).unwrap();
    assert!(dot.starts_with("digraph infrastructure"));
}

#[test]
fn test_subcommand_passes_and_writes_artifacts() {
    let dir = workdir("test");
    write_demo(&dir);
    let art = dir.join("art");
    let out = bin()
        .arg("test")
        .arg(dir.join("prog.src"))
        .arg("--stimulus")
        .arg(format!("inp={}", dir.join("inp.stim").display()))
        .arg("--trace")
        .arg("--artifacts")
        .arg(&art)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("PASS"));
    for file in [
        "prog_datapath.xml",
        "prog_fsm.xml",
        "prog.hds",
        "prog_fsm.java",
        "prog.vcd",
        "out.mem",
    ] {
        assert!(art.join(file).exists(), "missing artifact {file}");
    }
    // The dumped result memory parses and holds the doubled inputs.
    let text = std::fs::read_to_string(art.join("out.mem")).unwrap();
    let stim = fpgatest::stimulus::parse(&text).unwrap();
    let mut image = vec![None; 4];
    stim.apply(&mut image).unwrap();
    assert_eq!(image, vec![Some(20), Some(40), Some(60), Some(80)]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_subcommand_reports_suite_verdicts() {
    let dir = workdir("run");
    write_demo(&dir);
    std::fs::write(
        dir.join("suite.manifest"),
        "case double\n  source prog.src\n  stimulus inp inp.stim\n\
         case broken\n  source prog.src\n  stimulus nope inp.stim\n",
    )
    .unwrap();
    let out = bin().arg("run").arg(dir.join("suite.manifest")).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!out.status.success(), "mixed suite must fail: {stdout}");
    assert!(stdout.contains("double"));
    assert!(stdout.contains("1 passed, 1 failed"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compile_subcommand_emits_dialects() {
    let dir = workdir("compile");
    write_demo(&dir);
    let out_dir = dir.join("compiled");
    let out = bin()
        .arg("compile")
        .arg(dir.join("prog.src"))
        .arg("--out")
        .arg(&out_dir)
        .arg("--partitions")
        .arg("2")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(out_dir.join("rtg.xml").exists());
    assert!(out_dir.join("prog_c0_datapath.xml").exists());
    assert!(out_dir.join("prog_c1_fsm.xml").exists());
    // The emitted XML reparses under the dialect loaders.
    let dp_text = std::fs::read_to_string(out_dir.join("prog_c0_datapath.xml")).unwrap();
    let doc = xmlite::Document::parse(&dp_text).unwrap();
    assert!(nenya::xml::parse_datapath(&doc).is_ok());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_exits_2() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().arg("run").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().arg("test").arg("/no/such/file.src").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
