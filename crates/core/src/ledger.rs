//! Cross-run trend ledger — the `fpgatest-ledger-v1` format behind
//! `fpgatest trends`.
//!
//! The one-shot `--baseline` comparison answers "is this run slower
//! than that saved one?". The ledger answers the longitudinal question:
//! every `run` / `test` / `faults` / bench invocation can append one
//! summary line to an append-only `runs.jsonl` (`--ledger runs.jsonl`),
//! and `fpgatest trends runs.jsonl` renders wall-time, kernel-counter,
//! and detected-fraction trajectories across those runs with percent
//! deltas — optionally gated (`--gate PCT` exits non-zero when the
//! latest entry regresses beyond the threshold against its
//! predecessor).
//!
//! Timestamps use `SystemTime` (they label entries, nothing is
//! subtracted from them); every *duration* in an entry was measured
//! with monotonic `std::time::Instant` by the code that produced it.

use crate::telemetry::Json;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

/// Schema tag carried by every ledger line.
pub const LEDGER_SCHEMA: &str = "fpgatest-ledger-v1";

/// One invocation's summary — one line of `runs.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// Which command ran: `run`, `test`, `faults`, or `bench`.
    pub command: String,
    /// What it ran over (manifest path, source file, design name).
    pub key: String,
    /// Simulation engine used.
    pub engine: String,
    /// Wall-clock timestamp (seconds since the Unix epoch); labels the
    /// entry, never used for duration arithmetic.
    pub unix_seconds: f64,
    /// Monotonic wall-clock time of the whole invocation.
    pub wall_seconds: f64,
    /// Passing cases (or non-crashed injections for `faults`).
    pub passed: u64,
    /// Failing cases (or silent faults for `faults`).
    pub failed: u64,
    /// Fault campaigns: the oracle's detected fraction.
    pub detected_fraction: Option<f64>,
    /// Named counters worth trending (kernel events/evals/updates, ...).
    pub counters: Vec<(String, f64)>,
}

impl LedgerEntry {
    /// A blank entry for `command` over `key`, stamped with the current
    /// wall-clock time.
    pub fn new(command: &str, key: &str) -> LedgerEntry {
        LedgerEntry {
            command: command.to_string(),
            key: key.to_string(),
            engine: String::new(),
            unix_seconds: unix_now(),
            wall_seconds: 0.0,
            passed: 0,
            failed: 0,
            detected_fraction: None,
            counters: Vec::new(),
        }
    }

    /// Serializes to one sorted-key JSON object.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("schema".to_string(), Json::from(LEDGER_SCHEMA)),
            ("command".to_string(), Json::from(self.command.as_str())),
            ("key".to_string(), Json::from(self.key.as_str())),
            ("engine".to_string(), Json::from(self.engine.as_str())),
            ("unix_seconds".to_string(), Json::from(self.unix_seconds)),
            ("wall_seconds".to_string(), Json::from(self.wall_seconds)),
            ("passed".to_string(), Json::from(self.passed)),
            ("failed".to_string(), Json::from(self.failed)),
        ];
        if let Some(fraction) = self.detected_fraction {
            pairs.push(("detected_fraction".to_string(), Json::from(fraction)));
        }
        if !self.counters.is_empty() {
            pairs.push((
                "counters".to_string(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(name, value)| (name.clone(), Json::from(*value)))
                        .collect(),
                ),
            ));
        }
        let mut json = Json::Obj(pairs);
        json.sort_keys();
        json
    }

    /// Parses a ledger line back into its typed form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing field or wrong schema.
    pub fn from_json(json: &Json) -> Result<LedgerEntry, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(LEDGER_SCHEMA) => {}
            Some(other) => return Err(format!("unexpected schema '{other}'")),
            None => return Err("missing 'schema'".to_string()),
        }
        let s = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("missing string '{key}'"))
        };
        let f = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing number '{key}'"))
        };
        let u = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing integer '{key}'"))
        };
        let mut counters = Vec::new();
        if let Some(Json::Obj(pairs)) = json.get("counters") {
            for (name, value) in pairs {
                let value = value
                    .as_f64()
                    .ok_or_else(|| format!("counter '{name}' is not a number"))?;
                counters.push((name.clone(), value));
            }
        }
        Ok(LedgerEntry {
            command: s("command")?,
            key: s("key")?,
            engine: s("engine")?,
            unix_seconds: f("unix_seconds")?,
            wall_seconds: f("wall_seconds")?,
            passed: u("passed")?,
            failed: u("failed")?,
            detected_fraction: json.get("detected_fraction").and_then(Json::as_f64),
            counters,
        })
    }
}

/// Seconds since the Unix epoch, for entry timestamps.
pub fn unix_now() -> f64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs_f64())
        .unwrap_or(0.0)
}

/// Appends one entry to the ledger at `path` (created if absent). The
/// write goes through a [`BufWriter`] flushed before returning, so the
/// entry hits disk at end of run as one whole line.
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn append(path: &Path, entry: &LedgerEntry) -> io::Result<()> {
    let file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    let mut writer = BufWriter::new(file);
    writer.write_all(entry.to_json().emit().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Reads every entry of a ledger file, in append order.
///
/// # Errors
///
/// Returns a message naming the offending line number for unreadable
/// files, unparseable lines, or wrong-schema entries.
pub fn read(path: &Path) -> Result<Vec<LedgerEntry>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    let mut entries = Vec::new();
    for (number, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let json = Json::parse(line)
            .map_err(|e| format!("{} line {}: {e}", path.display(), number + 1))?;
        let entry = LedgerEntry::from_json(&json)
            .map_err(|e| format!("{} line {}: {e}", path.display(), number + 1))?;
        entries.push(entry);
    }
    Ok(entries)
}

/// What [`render_trends`] produced.
#[derive(Debug, Clone)]
pub struct TrendReport {
    /// The rendered trajectories, ready to print.
    pub text: String,
    /// Whether any group's latest entry regressed beyond the gate.
    pub gate_exceeded: bool,
}

fn percent_change(then: f64, now: f64) -> String {
    if then <= 0.0 {
        "n/a".to_string()
    } else {
        format!("{:+.1}%", (now - then) / then * 100.0)
    }
}

fn percent_delta(then: f64, now: f64) -> Option<f64> {
    if then <= 0.0 {
        None
    } else {
        Some((now - then) / then * 100.0)
    }
}

/// Renders per-`(command, key)` trajectories of wall time, counters,
/// and detected fraction, each entry with its percent delta against the
/// previous entry of the same group.
///
/// With `gate = Some(pct)`, the latest entry of each group is checked
/// against its predecessor: a wall-time increase beyond `pct` percent
/// or a detected-fraction drop beyond `pct` percent marks the report
/// gate-exceeded (the `trends --gate` exit-code contract). Counters are
/// rendered but never gate — they are fingerprints, not budgets.
pub fn render_trends(entries: &[LedgerEntry], gate: Option<f64>) -> TrendReport {
    let mut groups: Vec<((String, String), Vec<&LedgerEntry>)> = Vec::new();
    for entry in entries {
        let group_key = (entry.command.clone(), entry.key.clone());
        match groups.iter_mut().find(|(key, _)| *key == group_key) {
            Some((_, members)) => members.push(entry),
            None => groups.push((group_key, vec![entry])),
        }
    }

    let mut text = String::new();
    let mut gate_exceeded = false;
    for ((command, key), members) in &groups {
        text.push_str(&format!(
            "== {command} {key} ({} run{}) ==\n",
            members.len(),
            if members.len() == 1 { "" } else { "s" }
        ));
        for (position, entry) in members.iter().enumerate() {
            let previous = position.checked_sub(1).map(|p| members[p]);
            let mut line = format!(
                "  run {:>2}: wall {:.4}s",
                position + 1,
                entry.wall_seconds
            );
            if let Some(prev) = previous {
                line.push_str(&format!(
                    " ({})",
                    percent_change(prev.wall_seconds, entry.wall_seconds)
                ));
            }
            if let Some(fraction) = entry.detected_fraction {
                line.push_str(&format!(", detected {fraction:.3}"));
                if let Some(prev_fraction) =
                    previous.and_then(|prev| prev.detected_fraction)
                {
                    line.push_str(&format!(
                        " ({})",
                        percent_change(prev_fraction, fraction)
                    ));
                }
            }
            line.push_str(&format!(
                ", {} passed / {} failed",
                entry.passed, entry.failed
            ));
            for (name, value) in &entry.counters {
                line.push_str(&format!(", {name} {value}"));
                if let Some(prev_value) = previous.and_then(|prev| {
                    prev.counters
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| *v)
                }) {
                    line.push_str(&format!(" ({})", percent_change(prev_value, *value)));
                }
            }
            text.push_str(&line);
            text.push('\n');
        }
        if let (Some(threshold), [.., prev, last]) = (gate, members.as_slice()) {
            let wall_delta = percent_delta(prev.wall_seconds, last.wall_seconds);
            if let Some(delta) = wall_delta {
                if delta > threshold {
                    gate_exceeded = true;
                    text.push_str(&format!(
                        "  GATE: wall time {:+.1}% exceeds +{threshold:.1}%\n",
                        delta
                    ));
                }
            }
            if let (Some(prev_fraction), Some(last_fraction)) =
                (prev.detected_fraction, last.detected_fraction)
            {
                if let Some(delta) = percent_delta(prev_fraction, last_fraction) {
                    if delta < -threshold {
                        gate_exceeded = true;
                        text.push_str(&format!(
                            "  GATE: detected fraction {delta:+.1}% exceeds -{threshold:.1}%\n",
                        ));
                    }
                }
            }
        }
    }
    if groups.is_empty() {
        text.push_str("ledger is empty\n");
    }
    TrendReport {
        text,
        gate_exceeded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(command: &str, key: &str, wall: f64, detected: Option<f64>) -> LedgerEntry {
        LedgerEntry {
            engine: "event".to_string(),
            wall_seconds: wall,
            passed: 5,
            failed: 0,
            detected_fraction: detected,
            counters: vec![("events".to_string(), 1000.0)],
            ..LedgerEntry::new(command, key)
        }
    }

    #[test]
    fn entry_round_trips_through_json() {
        let original = entry("faults", "fdct1", 0.5, Some(0.95));
        let line = original.to_json().emit();
        let parsed = LedgerEntry::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn to_json_is_sorted_and_stable() {
        let e = entry("run", "suite.manifest", 1.0, None);
        assert_eq!(e.to_json().emit(), e.to_json().emit());
        let first = e.to_json().emit();
        let mut sorted = e.to_json();
        sorted.sort_keys();
        assert_eq!(first, sorted.emit(), "already canonical");
    }

    #[test]
    fn append_and_read_round_trip() {
        let dir = std::env::temp_dir().join("fpgatest_ledger_test");
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("runs_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let a = entry("run", "m", 1.0, None);
        let b = entry("run", "m", 2.0, None);
        append(&path, &a).unwrap();
        append(&path, &b).unwrap();
        let entries = read(&path).unwrap();
        assert_eq!(entries, vec![a, b]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trends_render_deltas_per_group() {
        let entries = vec![
            entry("run", "m", 1.0, None),
            entry("faults", "fdct1", 0.5, Some(0.9)),
            entry("run", "m", 0.5, None),
        ];
        let report = render_trends(&entries, None);
        assert!(report.text.contains("== run m (2 runs) =="));
        assert!(report.text.contains("(-50.0%)"), "{}", report.text);
        assert!(report.text.contains("== faults fdct1 (1 run) =="));
        assert!(!report.gate_exceeded);
    }

    #[test]
    fn gate_trips_on_wall_regression_and_detected_drop() {
        let slow = vec![
            entry("run", "m", 1.0, None),
            entry("run", "m", 2.0, None),
        ];
        let report = render_trends(&slow, Some(10.0));
        assert!(report.gate_exceeded);
        assert!(report.text.contains("GATE: wall time"), "{}", report.text);

        let weaker_oracle = vec![
            entry("faults", "d", 1.0, Some(0.9)),
            entry("faults", "d", 1.0, Some(0.5)),
        ];
        let report = render_trends(&weaker_oracle, Some(10.0));
        assert!(report.gate_exceeded);
        assert!(
            report.text.contains("GATE: detected fraction"),
            "{}",
            report.text
        );

        let fine = vec![
            entry("run", "m", 1.0, None),
            entry("run", "m", 1.05, None),
        ];
        assert!(!render_trends(&fine, Some(10.0)).gate_exceeded);
    }
}
