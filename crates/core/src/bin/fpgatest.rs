//! `fpgatest` — the command-line front end of the test infrastructure.
//!
//! ```text
//! fpgatest run <suite.manifest> [--jobs N] run a whole suite (the ANT-build role)
//! fpgatest test <prog.src> [options]       run one program through the flow
//! fpgatest faults <suite.manifest>         run a fault-injection campaign
//! fpgatest serve [--listen ADDR]           long-running job daemon (compile
//!                                          once, simulate many)
//! fpgatest submit <manifest> --addr ADDR   send a suite or campaign to a daemon
//! fpgatest compile <prog.src> --out <dir>  emit XML/hds/dot/behavior artifacts
//! fpgatest figure1                         print the infrastructure diagram (dot)
//! ```
//!
//! `test` options:
//!
//! ```text
//! --stimulus <mem>=<file>   initial memory contents (repeatable)
//! --width <bits>            design data width (default 16)
//! --partitions <k>          temporal partitions (default 1)
//! --policy <list|one-op-per-state>
//! --optimize                enable the compiler's TAC optimizations
//! --trace                   print where the VCD of each configuration went
//! --artifacts <dir>         write XML/hds/dot/behavior/VCD files
//! --engine <event|cycle|level|batch>
//!                           simulation engine (default event; see
//!                           DESIGN.md's engine-selection matrix)
//! ```
//!
//! `run` also accepts `--engine`, which overrides the engine for every
//! case in the manifest.
//!
//! `--jobs N` runs suite cases on `N` worker threads; the report and
//! telemetry keep the manifest's order regardless of completion order.
//!
//! Observability options (`run` and `test`):
//!
//! ```text
//! --metrics-out <file>      write the fpgatest-metrics-v1 JSON report
//! --trace-log <file>        write the span trace as JSONL
//! --baseline <file>         print timing deltas against a previous
//!                           --metrics-out report (verdicts unaffected)
//! --verbose                 print the extended Table I (golden(s),
//!                           cycles, events)
//! --events-out <file|->     stream fpgatest-events-v1 JSONL live
//!                           (tail-able; `-` is stdout)
//! --profile                 collect per-class / per-rank / per-phase
//!                           engine timing into the metrics report
//! --profile-folded <file>   also write flamegraph-compatible folded
//!                           stacks (feed to flamegraph.pl / inferno)
//! --ledger <file>           append one summary line to an append-only
//!                           runs.jsonl for `fpgatest trends`
//! ```
//!
//! `faults` also accepts `--events-out` and `--ledger`; `fpgatest
//! trends <runs.jsonl> [--gate PCT]` renders the ledger's trajectories
//! and exits non-zero when the latest run regresses past the gate.
//!
//! `test` also accepts a `.manifest` path, which runs the whole suite
//! (equivalent to `run`) so the observability flags apply uniformly.
//!
//! `test` fault/watchdog options (also available as manifest directives
//! `fault`, `max_ticks`, `timeout`):
//!
//! ```text
//! --fault <spec>            inject a hardware fault into the simulated
//!                           design (repeatable): stuck0:SIG.BIT,
//!                           stuck1:SIG.BIT, flip:SIG.BIT@CYCLE,
//!                           seu:SIG.BIT@CYCLE, sram:MEM@ADDR.BIT
//! --max-ticks <n>           per-configuration tick watchdog
//! --timeout <ms>            wall-clock watchdog around each case
//! ```
//!
//! `faults` options:
//!
//! ```text
//! --design <name>           campaign only this case (repeatable)
//! --engine <event|cycle|level|batch>
//! --seed <n>                site-sampling seed (default 1)
//! --sites <n>               injections per case (default 200)
//! --max-ticks <n>           per-injection tick watchdog (default: 5x the
//!                           clean run)
//! --report <file>           write the fpgatest-faults-v1 JSON report
//! --min-detected <f>        fail unless every campaign detects at least
//!                           this fraction
//! --baseline <file>         fail if coverage regressed vs a previous
//!                           --report file
//! --shards <n>              spread injections over N work-stealing
//!                           worker shards (one --design at a time;
//!                           verdicts and events stay bit-identical to
//!                           --shards 1)
//! --checkpoint <file>       write fpgatest-checkpoint-v1 snapshots of
//!                           the completed prefix while running
//! --checkpoint-every <k>    merged injections between snapshots
//! --resume <file>           skip the ranges a checkpoint already holds
//! ```
//!
//! A sharded campaign interrupted by SIGINT exits 130 after saving a
//! final checkpoint; `--resume` continues it to the same bytes an
//! uninterrupted run produces.
//!
//! Exit codes: 0 = everything passed; 1 = verification failed (or fault
//! coverage below the requested floor/baseline); 2 = usage or flow
//! error; 3 = a case crashed the harness (caught panic); 4 = a watchdog
//! (tick or wall-clock) tripped.

use fpgatest::events::EventSink;
use fpgatest::faults::{campaign_json, run_campaign, CampaignOptions, FaultSpec, InjectionOutcome};
use fpgatest::flow::{Engine, FlowOptions, TestFlow};
use fpgatest::ledger::{self, LedgerEntry};
use fpgatest::suite::{CaseResult, SuiteReport};
use fpgatest::telemetry::{self, Json, Recorder};
use fpgatest::{metrics, stimulus, suite};
use nenya::schedule::SchedulePolicy;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("test") => cmd_test(&args[1..]),
        Some("faults") => cmd_faults(&args[1..]),
        Some("trends") => cmd_trends(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("compile") => cmd_compile(&args[1..]),
        Some("figure1") => {
            print!("{}", fpgatest::dot::flow_diagram());
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            usage();
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command '{other}'\n");
            usage();
            ExitCode::from(2)
        }
    }
}

fn usage() {
    eprintln!(
        "fpgatest — functional testing of compiler-generated FPGA designs

USAGE:
  fpgatest run <suite.manifest> [--jobs N] [--engine event|cycle|level|batch]
               [--metrics-out FILE] [--trace-log FILE] [--baseline FILE]
               [--verbose] [--events-out FILE|-] [--profile]
               [--profile-folded FILE] [--ledger FILE]
  fpgatest test <prog.src|suite.manifest> [--stimulus mem=file]... [--width N]
                [--partitions K] [--policy list|one-op-per-state]
                [--optimize] [--trace] [--artifacts DIR] [--jobs N]
                [--engine event|cycle|level|batch] [--fault SPEC]...
                [--max-ticks N] [--timeout MS]
                [--metrics-out FILE] [--trace-log FILE] [--baseline FILE]
                [--verbose] [--events-out FILE|-] [--profile]
                [--profile-folded FILE] [--ledger FILE]
  fpgatest faults <suite.manifest> [--design NAME]... [--engine E] [--seed N]
                [--sites N] [--max-ticks N] [--report FILE]
                [--min-detected F] [--baseline FILE]
                [--events-out FILE|-] [--ledger FILE]
                [--shards N] [--checkpoint FILE] [--checkpoint-every K]
                [--resume FILE]
  fpgatest trends <runs.jsonl> [--gate PCT]
  fpgatest serve [--listen ADDR] [--workers N] [--cache N] [--timeout MS]
                [--ledger FILE] [--retries N] [--backoff MS] [--max-queue N]
                [--max-line BYTES] [--read-deadline MS] [--idle-timeout MS]
                [--chaos SEED]
  fpgatest submit <suite.manifest> --addr ADDR [--design NAME]... [--engine E]
                [--faults --seed N --sites N [--shards N]] [--max-ticks N]
                [--timeout MS] [--events-out FILE|-] [--report FILE] [--no-cache]
  fpgatest submit --addr ADDR --stats | --shutdown | --shed
  fpgatest compile <prog.src> --out DIR [--width N] [--partitions K] [--optimize]
  fpgatest figure1 > figure1.dot

exit codes: 0 pass, 1 fail, 2 usage/flow error, 3 harness crash, 4 watchdog"
    );
}

/// The observability flags shared by `run` and `test`.
#[derive(Default)]
struct TelemetryArgs {
    metrics_out: Option<PathBuf>,
    trace_log: Option<PathBuf>,
    baseline: Option<PathBuf>,
    verbose: bool,
    events_out: Option<String>,
    profile: bool,
    profile_folded: Option<PathBuf>,
    ledger: Option<PathBuf>,
}

impl TelemetryArgs {
    /// Tries to claim one flag; `value` fetches its argument.
    fn accept(
        &mut self,
        arg: &str,
        value: &mut dyn FnMut(&str) -> Result<String, String>,
    ) -> Result<bool, String> {
        match arg {
            "--metrics-out" => self.metrics_out = Some(PathBuf::from(value("--metrics-out")?)),
            "--trace-log" => self.trace_log = Some(PathBuf::from(value("--trace-log")?)),
            "--baseline" => self.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--verbose" => self.verbose = true,
            "--events-out" => self.events_out = Some(value("--events-out")?),
            "--profile" => self.profile = true,
            "--profile-folded" => {
                self.profile_folded = Some(PathBuf::from(value("--profile-folded")?));
                // Folded stacks only exist when timing is collected.
                self.profile = true;
            }
            "--ledger" => self.ledger = Some(PathBuf::from(value("--ledger")?)),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Opens the `--events-out` sink (disabled when the flag is absent).
    fn event_sink(&self) -> Result<EventSink, String> {
        match &self.events_out {
            None => Ok(EventSink::disabled()),
            Some(path) => {
                EventSink::to_path(path).map_err(|e| format!("cannot open {path}: {e}"))
            }
        }
    }
}

/// Writes `--metrics-out` / `--trace-log` and prints `--baseline` deltas.
/// Never changes the verdict; failures here are their own errors.
fn emit_telemetry(
    report: &SuiteReport,
    recorder: &Recorder,
    args: &TelemetryArgs,
) -> Result<(), String> {
    // Canonical key order: serializing the same run twice (or the same
    // run on two machines) produces byte-identical reports, so metrics
    // files diff cleanly.
    let mut json = telemetry::suite_json(report, recorder);
    json.sort_keys();
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, json.emit_pretty())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("metrics written to {}", path.display());
    }
    if let Some(path) = &args.profile_folded {
        std::fs::write(path, folded_stacks(report))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("folded stacks written to {}", path.display());
    }
    if let Some(path) = &args.trace_log {
        let write = || -> std::io::Result<()> {
            let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
            recorder.write_jsonl(&mut out)?;
            out.flush()
        };
        write().map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("trace log written to {}", path.display());
    }
    if let Some(path) = &args.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let baseline =
            Json::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))?;
        print!("{}", telemetry::render_baseline_deltas(&json, &baseline));
    }
    Ok(())
}

/// Renders every `--profile` block as flamegraph-compatible folded
/// stacks (`frame;frame;frame count`, one line per leaf, counts in
/// microseconds): `design;config;event;<class>`, `…;level;rank N`, and
/// `…;cycle;<phase>` frames, ready for flamegraph.pl or inferno.
fn folded_stacks(report: &SuiteReport) -> String {
    let micros = |nanos: u64| (nanos / 1_000).max(1);
    let mut out = String::new();
    for (name, result) in &report.results {
        let CaseResult::Finished(finished) = result else {
            continue;
        };
        for run in &finished.runs {
            let Some(profile) = &run.profile else { continue };
            for class in &profile.classes {
                out.push_str(&format!(
                    "{name};{};event;{} {}\n",
                    run.name,
                    class.class,
                    micros(class.nanos)
                ));
            }
            for rank in &profile.ranks {
                out.push_str(&format!(
                    "{name};{};level;rank {} {}\n",
                    run.name,
                    rank.rank,
                    micros(rank.nanos)
                ));
            }
            for phase in &profile.phases {
                out.push_str(&format!(
                    "{name};{};cycle;{} {}\n",
                    run.name,
                    phase.phase,
                    micros(phase.nanos)
                ));
            }
        }
    }
    out
}

/// Appends one invocation summary to the `--ledger` file.
fn append_ledger(path: &Path, entry: &LedgerEntry) -> Result<(), String> {
    ledger::append(path, entry)
        .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
    println!("ledger entry appended to {}", path.display());
    Ok(())
}

/// The suite-level counters worth trending: total kernel events and
/// simulated cycles across every finished case.
fn suite_counters(report: &SuiteReport) -> Vec<(String, f64)> {
    let mut events = 0u64;
    let mut cycles = 0u64;
    for (_, result) in &report.results {
        if let CaseResult::Finished(finished) = result {
            for run in &finished.runs {
                events += run.kernel.events;
                cycles += run.cycles;
            }
        }
    }
    vec![
        ("cycles".to_string(), cycles as f64),
        ("events".to_string(), events as f64),
    ]
}

/// Prints the (extended, under `--verbose`) Table I for finished cases.
fn print_metrics(report: &SuiteReport, verbose: bool) {
    let rows: Vec<_> = report
        .results
        .iter()
        .filter_map(|(_, result)| match result {
            CaseResult::Finished(r) => Some(r.metrics.clone()),
            _ => None,
        })
        .collect();
    if rows.is_empty() {
        return;
    }
    if verbose {
        println!("{}", metrics::render_table1_ext(&rows));
    } else {
        println!("{}", metrics::render_table1(&rows));
    }
}

fn run_suite(
    manifest: &Path,
    telemetry_args: &TelemetryArgs,
    jobs: usize,
    engine: Option<Engine>,
) -> ExitCode {
    let mut suite = match suite::load_manifest(manifest) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(engine) = engine {
        suite.set_engine(engine);
    }
    let sink = match telemetry_args.event_sink() {
        Ok(sink) => sink,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    suite.set_events(sink, manifest.display().to_string());
    if telemetry_args.profile {
        suite.set_profile(true);
    }
    let mut recorder = Recorder::new();
    let run_started = Instant::now();
    let report = suite.run_parallel_recorded(jobs, &mut recorder);
    let wall_seconds = run_started.elapsed().as_secs_f64();
    print!("{}", report.render());
    print_metrics(&report, telemetry_args.verbose);
    if let Err(message) = emit_telemetry(&report, &recorder, telemetry_args) {
        eprintln!("error: {message}");
        return ExitCode::from(2);
    }
    if let Some(path) = &telemetry_args.ledger {
        let entry = LedgerEntry {
            engine: engine.unwrap_or_default().to_string(),
            wall_seconds,
            passed: report.passed() as u64,
            failed: report.failed() as u64,
            counters: suite_counters(&report),
            ..LedgerEntry::new("run", &manifest.display().to_string())
        };
        if let Err(message) = append_ledger(path, &entry) {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    }
    ExitCode::from(u8::try_from(report.exit_code()).unwrap_or(1))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut manifest = None;
    let mut telemetry_args = TelemetryArgs::default();
    let mut jobs = 1usize;
    let mut engine = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("'{what}' needs a value"))
        };
        if arg == "--jobs" {
            match value("--jobs").and_then(|v| parse_jobs(&v)) {
                Ok(n) => jobs = n,
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::from(2);
                }
            }
            continue;
        }
        if arg == "--engine" {
            match value("--engine").and_then(|v| v.parse::<Engine>()) {
                Ok(e) => engine = Some(e),
                Err(message) => {
                    eprintln!("error: {message}");
                    return ExitCode::from(2);
                }
            }
            continue;
        }
        match telemetry_args.accept(arg, &mut value) {
            Ok(true) => {}
            Ok(false) if manifest.is_none() && !arg.starts_with("--") => {
                manifest = Some(PathBuf::from(arg));
            }
            Ok(false) => {
                eprintln!("error: unexpected argument '{arg}'");
                return ExitCode::from(2);
            }
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(manifest) = manifest else {
        eprintln!("'run' needs a manifest path");
        return ExitCode::from(2);
    };
    run_suite(&manifest, &telemetry_args, jobs, engine)
}

/// `fpgatest faults <suite.manifest>` — run a fault-injection campaign
/// against every case of a manifest (or `--design NAME` only), classify
/// each injection, and optionally gate on a coverage floor or a
/// previously checked-in report.
fn cmd_faults(args: &[String]) -> ExitCode {
    let mut manifest = None;
    let mut engine = Engine::default();
    let mut seed = 1u64;
    let mut sites = 200usize;
    let mut max_ticks = None;
    let mut only: Vec<String> = Vec::new();
    let mut report_out: Option<PathBuf> = None;
    let mut min_detected: Option<f64> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut events_out: Option<String> = None;
    let mut ledger_out: Option<PathBuf> = None;
    let mut shards: Option<usize> = None;
    let mut checkpoint: Option<PathBuf> = None;
    let mut checkpoint_every = 0u64;
    let mut resume: Option<PathBuf> = None;
    let mut it = args.iter();
    let result = (|| -> Result<(), String> {
        while let Some(arg) = it.next() {
            let mut value = |what: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("'{what}' needs a value"))
            };
            match arg.as_str() {
                "--engine" => engine = value("--engine")?.parse()?,
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed needs an integer".to_string())?;
                }
                "--sites" => {
                    sites = value("--sites")?
                        .parse()
                        .map_err(|_| "--sites needs an integer".to_string())?;
                }
                "--max-ticks" => {
                    max_ticks = Some(
                        value("--max-ticks")?
                            .parse()
                            .map_err(|_| "--max-ticks needs an integer".to_string())?,
                    );
                }
                "--design" => only.push(value("--design")?),
                "--report" => report_out = Some(PathBuf::from(value("--report")?)),
                "--min-detected" => {
                    min_detected = Some(
                        value("--min-detected")?
                            .parse()
                            .map_err(|_| "--min-detected needs a fraction".to_string())?,
                    );
                }
                "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
                "--events-out" => events_out = Some(value("--events-out")?),
                "--ledger" => ledger_out = Some(PathBuf::from(value("--ledger")?)),
                "--shards" => {
                    shards = Some(
                        value("--shards")?
                            .parse()
                            .map_err(|_| "--shards needs an integer".to_string())?,
                    );
                }
                "--checkpoint" => checkpoint = Some(PathBuf::from(value("--checkpoint")?)),
                "--checkpoint-every" => {
                    checkpoint_every = value("--checkpoint-every")?
                        .parse()
                        .map_err(|_| "--checkpoint-every needs an integer".to_string())?;
                }
                "--resume" => resume = Some(PathBuf::from(value("--resume")?)),
                other if manifest.is_none() && !other.starts_with("--") => {
                    manifest = Some(PathBuf::from(other));
                }
                other => return Err(format!("unexpected argument '{other}'")),
            }
        }
        Ok(())
    })();
    if let Err(message) = result {
        eprintln!("error: {message}");
        return ExitCode::from(2);
    }
    let Some(manifest) = manifest else {
        eprintln!("'faults' needs a manifest path");
        return ExitCode::from(2);
    };
    let suite = match suite::load_manifest(&manifest) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let cases: Vec<_> = suite
        .cases()
        .iter()
        .filter(|c| only.is_empty() || only.iter().any(|n| n == &c.name))
        .collect();
    if cases.is_empty() {
        eprintln!("error: no matching cases in {}", manifest.display());
        return ExitCode::from(2);
    }

    let sink = match &events_out {
        None => EventSink::disabled(),
        Some(path) => match EventSink::to_path(path) {
            Ok(sink) => sink,
            Err(e) => {
                eprintln!("error: cannot open {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let options = CampaignOptions {
        seed,
        sites,
        engine,
        max_ticks,
        events: sink,
    };
    let sharded = shards.is_some() || checkpoint.is_some() || resume.is_some();
    let campaigns_started = Instant::now();
    let mut campaigns = Vec::new();
    if sharded {
        if cases.len() != 1 {
            eprintln!(
                "error: sharded campaigns run one design at a time; narrow with --design \
                 ({} cases matched)",
                cases.len()
            );
            return ExitCode::from(2);
        }
        fpgatest::campaign::install_sigint();
        let shard = fpgatest::faults::ShardedCampaignOptions {
            shards: shards.unwrap_or(1),
            checkpoint,
            checkpoint_every,
            resume,
            stop: None,
            sigint: true,
        };
        match fpgatest::faults::run_campaign_sharded(cases[0], &options, &shard) {
            Ok(outcome) => {
                if let Some(note) = &outcome.salvage {
                    eprintln!("fpgatest: {note}");
                }
                if outcome.interrupted {
                    eprintln!(
                        "fpgatest: interrupted; checkpoint holds the completed prefix"
                    );
                    return ExitCode::from(130);
                }
                print!("{}", outcome.report.render());
                campaigns.push(outcome.report);
            }
            Err(e) => {
                eprintln!("error: campaign '{}': {e}", cases[0].name);
                return ExitCode::from(2);
            }
        }
    } else {
        for case in cases {
            match run_campaign(case, &options) {
                Ok(report) => {
                    print!("{}", report.render());
                    campaigns.push(report);
                }
                Err(e) => {
                    eprintln!("error: campaign '{}': {e}", case.name);
                    return ExitCode::from(2);
                }
            }
        }
    }
    let campaigns_seconds = campaigns_started.elapsed().as_secs_f64();

    let mut json = Json::obj([
        ("schema", "fpgatest-faults-v1".into()),
        (
            "campaigns",
            Json::Arr(campaigns.iter().map(campaign_json).collect()),
        ),
    ]);
    json.sort_keys();
    if let Some(path) = &report_out {
        if let Err(e) = std::fs::write(path, json.emit_pretty()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("fault report written to {}", path.display());
    }

    if let Some(path) = &ledger_out {
        let detected: usize = campaigns
            .iter()
            .map(|c| c.count(InjectionOutcome::Detected))
            .sum();
        let silent: usize = campaigns
            .iter()
            .map(|c| c.count(InjectionOutcome::Silent))
            .sum();
        let hung: usize = campaigns.iter().map(|c| c.count(InjectionOutcome::Hung)).sum();
        let injections: usize = campaigns.iter().map(|c| c.injections.len()).sum();
        let denom = detected + silent + hung;
        let mut counters = vec![("injections".to_string(), injections as f64)];
        if sharded {
            counters.push(("shards".to_string(), shards.unwrap_or(1).max(1) as f64));
            counters.push((
                "sites_per_sec".to_string(),
                if campaigns_seconds > 0.0 {
                    injections as f64 / campaigns_seconds
                } else {
                    0.0
                },
            ));
        }
        let entry = LedgerEntry {
            engine: engine.to_string(),
            wall_seconds: campaigns_seconds,
            passed: detected as u64,
            failed: silent as u64,
            detected_fraction: Some(if denom == 0 {
                0.0
            } else {
                detected as f64 / denom as f64
            }),
            counters,
            ..LedgerEntry::new("faults", &manifest.display().to_string())
        };
        if let Err(message) = append_ledger(path, &entry) {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    }

    // A crashed injection is a harness bug regardless of coverage.
    let crashed: usize = campaigns
        .iter()
        .map(|c| c.count(InjectionOutcome::Crashed))
        .sum();
    if crashed > 0 {
        eprintln!("error: {crashed} injections crashed the harness");
        return ExitCode::from(3);
    }
    if let Some(floor) = min_detected {
        for campaign in &campaigns {
            if campaign.detected_fraction() < floor {
                eprintln!(
                    "error: '{}' detected fraction {:.3} below floor {floor:.3}",
                    campaign.design,
                    campaign.detected_fraction()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &baseline {
        match check_faults_baseline(&campaigns, path) {
            Ok(lines) => print!("{lines}"),
            Err(message) => {
                eprintln!("error: {message}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// `fpgatest trends <runs.jsonl> [--gate PCT]` — render wall-time,
/// counter, and detected-fraction trajectories across the ledger's
/// entries; with `--gate`, exit non-zero when the latest run regresses
/// past the threshold against its predecessor.
fn cmd_trends(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut gate = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--gate" => match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) => gate = Some(pct),
                None => {
                    eprintln!("error: --gate needs a percent");
                    return ExitCode::from(2);
                }
            },
            other if path.is_none() && !other.starts_with("--") => {
                path = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("error: unexpected argument '{other}'");
                return ExitCode::from(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("'trends' needs a ledger path");
        return ExitCode::from(2);
    };
    let entries = match ledger::read(&path) {
        Ok(entries) => entries,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let report = ledger::render_trends(&entries, gate);
    print!("{}", report.text);
    if report.gate_exceeded {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// SIGINT flag for `serve`: the handler only stores, a watcher thread
/// does the actual drain (signal handlers must not take locks).
static SERVE_SIGINT: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn serve_on_sigint(_signum: i32) {
    SERVE_SIGINT.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Installs the SIGINT hook via libc's `signal` (std links libc; no
/// crate needed). Unix-only; elsewhere `shutdown` requests still work.
#[cfg(unix)]
fn install_serve_sigint() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, serve_on_sigint as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_serve_sigint() {}

fn cmd_serve(args: &[String]) -> ExitCode {
    use fpgatest::serve::{ServeOptions, Server};
    let mut listen = "127.0.0.1:7411".to_string();
    let mut options = ServeOptions::default();
    let mut it = args.iter();
    let result = (|| -> Result<(), String> {
        while let Some(arg) = it.next() {
            let mut value = |what: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("'{what}' needs a value"))
            };
            match arg.as_str() {
                "--listen" => listen = value("--listen")?,
                "--workers" => {
                    options.workers = value("--workers")?
                        .parse()
                        .ok()
                        .filter(|n| *n >= 1)
                        .ok_or("--workers needs an integer >= 1")?;
                }
                "--cache" => {
                    options.cache_capacity = value("--cache")?
                        .parse()
                        .map_err(|_| "--cache needs an integer".to_string())?;
                }
                "--timeout" => {
                    options.default_wall_ms = value("--timeout")?
                        .parse()
                        .map_err(|_| "--timeout needs milliseconds".to_string())?;
                }
                "--ledger" => options.ledger = Some(PathBuf::from(value("--ledger")?)),
                "--retries" => {
                    options.retries = value("--retries")?
                        .parse()
                        .map_err(|_| "--retries needs an integer".to_string())?;
                }
                "--backoff" => {
                    options.backoff_base_ms = value("--backoff")?
                        .parse()
                        .map_err(|_| "--backoff needs milliseconds".to_string())?;
                }
                "--max-queue" => {
                    options.max_queue = value("--max-queue")?
                        .parse()
                        .map_err(|_| "--max-queue needs an integer (0 = unbounded)".to_string())?;
                }
                "--max-line" => {
                    options.max_line_len = value("--max-line")?
                        .parse()
                        .map_err(|_| "--max-line needs bytes".to_string())?;
                }
                "--read-deadline" => {
                    options.read_deadline_ms = value("--read-deadline")?
                        .parse()
                        .map_err(|_| "--read-deadline needs milliseconds".to_string())?;
                }
                "--idle-timeout" => {
                    options.idle_ms = value("--idle-timeout")?
                        .parse()
                        .map_err(|_| "--idle-timeout needs milliseconds".to_string())?;
                }
                "--chaos" => {
                    options.chaos = Some(
                        value("--chaos")?
                            .parse()
                            .map_err(|_| "--chaos needs a seed integer".to_string())?,
                    );
                }
                other => return Err(format!("unexpected argument '{other}'")),
            }
        }
        Ok(())
    })();
    if let Err(message) = result {
        eprintln!("error: {message}");
        return ExitCode::from(2);
    }
    let workers = options.workers;
    let cache = options.cache_capacity;
    let chaos = options.chaos;
    let server = match Server::bind(&listen, options) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {listen}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "fpgatest serve: listening on {} ({workers} workers, cache {cache} designs)",
        server.local_addr()
    );
    if let Some(seed) = chaos {
        eprintln!("fpgatest serve: CHAOS MODE — workers will be killed deterministically (seed {seed})");
    }
    let _ = std::io::stdout().flush();
    install_serve_sigint();
    let handle = server.shutdown_handle();
    std::thread::spawn(move || loop {
        if SERVE_SIGINT.load(std::sync::atomic::Ordering::SeqCst) {
            eprintln!("fpgatest serve: SIGINT — draining");
            handle.shutdown();
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    });
    match server.run() {
        Ok(()) => {
            println!("fpgatest serve: drained and stopped");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: serve failed: {e}");
            ExitCode::from(2)
        }
    }
}

/// Builds the serve job for one manifest case, carrying the case's own
/// compile/engine/watchdog options so served verdicts match in-process
/// runs of the same manifest.
fn job_from_case(
    case: &fpgatest::suite::TestCase,
    engine_override: Option<Engine>,
    events: bool,
    no_cache: bool,
    wall_override: Option<u64>,
) -> fpgatest::serve::JobSpec {
    let mut spec = fpgatest::serve::JobSpec::test(&case.name, &case.source);
    spec.stimuli = case.stimuli.clone();
    spec.width = Some(case.options.compile.width);
    spec.partitions = Some(case.options.compile.partitions);
    spec.policy = Some(case.options.compile.policy);
    spec.optimize = case.options.compile.optimize;
    spec.engine = engine_override.unwrap_or(case.options.engine);
    spec.max_ticks = Some(case.options.max_ticks);
    spec.wall_ms = wall_override.or(case.options.wall_timeout_ms);
    spec.events = events;
    spec.no_cache = no_cache;
    spec
}

fn cmd_submit(args: &[String]) -> ExitCode {
    use fpgatest::serve::Client;
    let mut addr = "127.0.0.1:7411".to_string();
    let mut manifest: Option<PathBuf> = None;
    let mut only: Vec<String> = Vec::new();
    let mut engine: Option<Engine> = None;
    let mut faults = false;
    let mut seed = 1u64;
    let mut sites = 200usize;
    let mut shards = 0usize;
    let mut max_ticks: Option<u64> = None;
    let mut wall_ms: Option<u64> = None;
    let mut events_out: Option<String> = None;
    let mut report_out: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut stats = false;
    let mut shutdown = false;
    let mut shed = false;
    let mut it = args.iter();
    let result = (|| -> Result<(), String> {
        while let Some(arg) = it.next() {
            let mut value = |what: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("'{what}' needs a value"))
            };
            match arg.as_str() {
                "--addr" => addr = value("--addr")?,
                "--design" => only.push(value("--design")?),
                "--engine" => engine = Some(value("--engine")?.parse()?),
                "--faults" => faults = true,
                "--seed" => {
                    seed = value("--seed")?
                        .parse()
                        .map_err(|_| "--seed needs an integer".to_string())?;
                }
                "--sites" => {
                    sites = value("--sites")?
                        .parse()
                        .map_err(|_| "--sites needs an integer".to_string())?;
                }
                "--shards" => {
                    shards = value("--shards")?
                        .parse()
                        .map_err(|_| "--shards needs an integer".to_string())?;
                }
                "--max-ticks" => {
                    max_ticks = Some(
                        value("--max-ticks")?
                            .parse()
                            .map_err(|_| "--max-ticks needs an integer".to_string())?,
                    );
                }
                "--timeout" => {
                    wall_ms = Some(
                        value("--timeout")?
                            .parse()
                            .map_err(|_| "--timeout needs milliseconds".to_string())?,
                    );
                }
                "--events-out" => events_out = Some(value("--events-out")?),
                "--report" => report_out = Some(PathBuf::from(value("--report")?)),
                "--no-cache" => no_cache = true,
                "--stats" => stats = true,
                "--shutdown" => shutdown = true,
                "--shed" => shed = true,
                other if manifest.is_none() && !other.starts_with("--") => {
                    manifest = Some(PathBuf::from(other));
                }
                other => return Err(format!("unexpected argument '{other}'")),
            }
        }
        Ok(())
    })();
    if let Err(message) = result {
        eprintln!("error: {message}");
        return ExitCode::from(2);
    }

    let mut client = match Client::connect(&addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("error: cannot connect to {addr}: {e}");
            return ExitCode::from(2);
        }
    };

    // Control modes need no manifest.
    if stats || shutdown {
        let response = if stats {
            client.stats()
        } else if shed {
            client.shutdown_shed()
        } else {
            client.shutdown()
        };
        return match response {
            Ok(mut json) => {
                json.sort_keys();
                println!("{}", json.emit_pretty());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }

    let Some(manifest) = manifest else {
        eprintln!("'submit' needs a manifest path (or --stats / --shutdown)");
        return ExitCode::from(2);
    };
    let suite = match suite::load_manifest(&manifest) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let cases: Vec<_> = suite
        .cases()
        .iter()
        .filter(|c| only.is_empty() || only.iter().any(|n| n == &c.name))
        .collect();
    if cases.is_empty() {
        eprintln!("error: no matching cases in {}", manifest.display());
        return ExitCode::from(2);
    }
    for case in &cases {
        if !case.options.faults.is_empty() {
            eprintln!(
                "warning: '{}' has fault directives; serve test jobs ignore them \
                 (use --faults for a campaign)",
                case.name
            );
        }
    }

    let events = events_out.is_some();
    if let Some(path) = &events_out {
        let writer: Box<dyn std::io::Write> = if path == "-" {
            Box::new(std::io::stdout())
        } else {
            match std::fs::File::create(path) {
                Ok(file) => Box::new(file),
                Err(e) => {
                    eprintln!("error: cannot open {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        };
        client.stream_events_to(writer);
    }

    // Submit everything first so the daemon's worker pool runs cases in
    // parallel, then collect verdicts in manifest order. Specs are kept
    // so a lost daemon can be survived: reconnect, resume by id, or
    // resubmit when the restarted daemon no longer knows the id.
    let mut submitted: Vec<(String, u64, fpgatest::serve::JobSpec)> = Vec::new();
    for case in &cases {
        let spec = if faults {
            let mut spec =
                fpgatest::serve::JobSpec::faults(&case.name, &case.source, seed, sites);
            spec.stimuli = case.stimuli.clone();
            spec.width = Some(case.options.compile.width);
            spec.partitions = Some(case.options.compile.partitions);
            spec.policy = Some(case.options.compile.policy);
            spec.optimize = case.options.compile.optimize;
            spec.engine = engine.unwrap_or(case.options.engine);
            spec.max_ticks = max_ticks;
            spec.wall_ms = wall_ms;
            spec.events = events;
            spec.shards = shards;
            spec
        } else {
            job_from_case(case, engine, events, no_cache, wall_ms)
        };
        match client.submit(&spec) {
            Ok(id) => submitted.push((case.name.clone(), id, spec)),
            Err(e) => {
                eprintln!("error: submitting '{}': {e}", case.name);
                return ExitCode::from(2);
            }
        }
    }

    let mut outcomes = Vec::new();
    for (name, id, spec) in &submitted {
        match client.wait_or_resubmit(*id, spec) {
            Ok(outcome) => {
                let detail = if outcome.detail.is_empty() {
                    String::new()
                } else {
                    format!(" — {}", outcome.detail)
                };
                let attempts = if outcome.attempts > 1 {
                    format!(", {} attempts", outcome.attempts)
                } else {
                    String::new()
                };
                println!(
                    "{name}: {} ({:.3}s{attempts}){detail}",
                    outcome.verdict, outcome.wall_seconds
                );
                outcomes.push((name.clone(), outcome));
            }
            Err(e) => {
                eprintln!("error: waiting for '{name}': {e}");
                return ExitCode::from(2);
            }
        }
    }

    if let Some(path) = &report_out {
        let jobs: Vec<Json> = outcomes
            .iter()
            .map(|(name, outcome)| {
                Json::obj([
                    ("name", Json::from(name.as_str())),
                    ("verdict", Json::from(outcome.verdict.as_str())),
                    ("exit_code", Json::from(i64::from(outcome.exit_code))),
                    ("wall_seconds", Json::from(outcome.wall_seconds)),
                    ("attempts", Json::from(outcome.attempts)),
                    ("detail", Json::from(outcome.detail.as_str())),
                    ("report", outcome.report.clone()),
                ])
            })
            .collect();
        let mut json = Json::obj([
            ("schema", Json::from("fpgatest-submit-v1")),
            ("addr", Json::from(addr.as_str())),
            ("jobs", Json::Arr(jobs)),
        ]);
        json.sort_keys();
        if let Err(e) = std::fs::write(path, json.emit_pretty()) {
            eprintln!("error: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("report written to {}", path.display());
    }

    // Same precedence as SuiteReport::exit_code: crash > timeout > fail.
    let verdicts: Vec<&str> = outcomes.iter().map(|(_, o)| o.verdict.as_str()).collect();
    if verdicts.contains(&"crash") {
        ExitCode::from(3)
    } else if verdicts.contains(&"timeout") {
        ExitCode::from(4)
    } else if verdicts.iter().all(|v| *v == "pass") {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Compares campaign coverage against a checked-in `fpgatest-faults-v1`
/// report: every design present in the baseline must detect at least the
/// baseline's fraction (small float slack for summary rounding).
fn check_faults_baseline(
    campaigns: &[fpgatest::faults::CampaignReport],
    path: &Path,
) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let json = Json::parse(&text).map_err(|e| format!("baseline {}: {e}", path.display()))?;
    let empty: [Json; 0] = [];
    let entries = json
        .get("campaigns")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let mut out = String::new();
    for campaign in campaigns {
        let Some(entry) = entries
            .iter()
            .find(|e| e.get("design").and_then(Json::as_str) == Some(campaign.design.as_str()))
        else {
            out.push_str(&format!(
                "baseline: no entry for '{}' (new design)\n",
                campaign.design
            ));
            continue;
        };
        let floor = entry
            .get("detected_fraction")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        let now = campaign.detected_fraction();
        if now + 1e-9 < floor {
            return Err(format!(
                "'{}' detected fraction regressed: {now:.3} < baseline {floor:.3}",
                campaign.design
            ));
        }
        out.push_str(&format!(
            "baseline: '{}' detected {now:.3} (baseline {floor:.3}) ok\n",
            campaign.design
        ));
    }
    Ok(out)
}

fn parse_jobs(raw: &str) -> Result<usize, String> {
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err("--jobs needs an integer >= 1".to_string()),
    }
}

struct TestArgs {
    source: PathBuf,
    stimuli: Vec<(String, PathBuf)>,
    options: FlowOptions,
    artifacts: Option<PathBuf>,
    telemetry: TelemetryArgs,
    jobs: usize,
}

fn parse_test_args(args: &[String]) -> Result<TestArgs, String> {
    let mut source = None;
    let mut stimuli = Vec::new();
    let mut options = FlowOptions::default();
    let mut artifacts = None;
    let mut telemetry_args = TelemetryArgs::default();
    let mut jobs = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("'{what}' needs a value"))
        };
        if telemetry_args.accept(arg, &mut value)? {
            continue;
        }
        match arg.as_str() {
            "--stimulus" => {
                let v = value("--stimulus")?;
                let (mem, file) = v
                    .split_once('=')
                    .ok_or_else(|| "--stimulus takes mem=file".to_string())?;
                stimuli.push((mem.to_string(), PathBuf::from(file)));
            }
            "--width" => {
                options.compile.width = value("--width")?
                    .parse()
                    .map_err(|_| "--width needs an integer".to_string())?;
            }
            "--partitions" => {
                options.compile.partitions = value("--partitions")?
                    .parse()
                    .map_err(|_| "--partitions needs an integer".to_string())?;
            }
            "--policy" => {
                options.compile.policy = match value("--policy")?.as_str() {
                    "list" => SchedulePolicy::List,
                    "one-op-per-state" => SchedulePolicy::OneOpPerState,
                    other => return Err(format!("unknown policy '{other}'")),
                };
            }
            "--optimize" => options.compile.optimize = true,
            "--engine" => options.engine = value("--engine")?.parse()?,
            "--fault" => options.faults.push(FaultSpec::parse(&value("--fault")?)?),
            "--max-ticks" => {
                options.max_ticks = value("--max-ticks")?
                    .parse()
                    .map_err(|_| "--max-ticks needs an integer".to_string())?;
            }
            "--timeout" => {
                options.wall_timeout_ms = Some(
                    value("--timeout")?
                        .parse()
                        .map_err(|_| "--timeout needs milliseconds".to_string())?,
                );
            }
            "--trace" => options.trace = true,
            "--artifacts" => artifacts = Some(PathBuf::from(value("--artifacts")?)),
            "--jobs" => jobs = parse_jobs(&value("--jobs")?)?,
            other if source.is_none() && !other.starts_with("--") => {
                source = Some(PathBuf::from(other));
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    Ok(TestArgs {
        source: source.ok_or_else(|| "missing source file".to_string())?,
        stimuli,
        options,
        artifacts,
        telemetry: telemetry_args,
        jobs,
    })
}

fn cmd_test(args: &[String]) -> ExitCode {
    let parsed = match parse_test_args(args) {
        Ok(p) => p,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    // A manifest runs the whole suite, so the observability flags work
    // uniformly across `run` and `test`.
    if parsed.source.extension().is_some_and(|e| e == "manifest") {
        let engine = (parsed.options.engine != Engine::default()).then_some(parsed.options.engine);
        return run_suite(&parsed.source, &parsed.telemetry, parsed.jobs, engine);
    }
    let source = match std::fs::read_to_string(&parsed.source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", parsed.source.display());
            return ExitCode::from(2);
        }
    };
    let name = parsed
        .source
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "design".to_string());
    let mut options = parsed.options.clone();
    options.profile = parsed.telemetry.profile;
    match parsed.telemetry.event_sink() {
        Ok(sink) => options.events = sink,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    }
    let mut flow = TestFlow::new(&name, source).with_options(options);
    for (mem, file) in &parsed.stimuli {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        match stimulus::parse(&text) {
            Ok(s) => flow = flow.stimulus(mem, s),
            Err(e) => {
                eprintln!("stimulus {}: {e}", file.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut recorder = Recorder::new();
    let run_started = Instant::now();
    let report = match flow.run_recorded(&mut recorder) {
        Ok(r) => r,
        Err(e @ fpgatest::flow::FlowError::Timeout { .. }) => {
            eprintln!("timeout: {e}");
            return ExitCode::from(4);
        }
        Err(e) => {
            eprintln!("flow error: {e}");
            return ExitCode::from(2);
        }
    };
    let wall_seconds = run_started.elapsed().as_secs_f64();
    print!("{}", report.render());
    if parsed.telemetry.verbose {
        println!("{}", metrics::render_table1_ext(std::slice::from_ref(&report.metrics)));
    } else {
        println!("{}", report.metrics);
    }

    if let Some(dir) = &parsed.artifacts {
        if let Err(e) = write_artifacts(dir, &report) {
            eprintln!("cannot write artifacts: {e}");
            return ExitCode::from(2);
        }
        println!("artifacts written to {}", dir.display());
    }
    let passed = report.passed;
    // The single-design run reuses the suite report schema so baselines
    // and metrics files diff the same way in both modes.
    let suite_report = SuiteReport {
        results: vec![(name, CaseResult::Finished(report))],
    };
    if let Err(message) = emit_telemetry(&suite_report, &recorder, &parsed.telemetry) {
        eprintln!("error: {message}");
        return ExitCode::from(2);
    }
    if let Some(path) = &parsed.telemetry.ledger {
        let entry = LedgerEntry {
            engine: parsed.options.engine.to_string(),
            wall_seconds,
            passed: u64::from(passed),
            failed: u64::from(!passed),
            counters: suite_counters(&suite_report),
            ..LedgerEntry::new("test", &parsed.source.display().to_string())
        };
        if let Err(message) = append_ledger(path, &entry) {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    }
    if passed {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn write_artifacts(dir: &Path, report: &fpgatest::TestReport) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    if let Some(artifacts) = &report.artifacts {
        std::fs::write(dir.join("rtg.xml"), &artifacts.rtg_xml)?;
        std::fs::write(dir.join("rtg.dot"), &artifacts.rtg_dot)?;
        std::fs::write(dir.join("rtg_controller.java"), &artifacts.controller_src)?;
        for config in &artifacts.configs {
            std::fs::write(dir.join(format!("{}_datapath.xml", config.name)), &config.datapath_xml)?;
            std::fs::write(dir.join(format!("{}_fsm.xml", config.name)), &config.fsm_xml)?;
            std::fs::write(dir.join(format!("{}.hds", config.name)), &config.hds)?;
            std::fs::write(dir.join(format!("{}_fsm.java", config.name)), &config.behavior_src)?;
            std::fs::write(dir.join(format!("{}_datapath.dot", config.name)), &config.datapath_dot)?;
            std::fs::write(dir.join(format!("{}_fsm.dot", config.name)), &config.fsm_dot)?;
        }
    }
    for run in &report.runs {
        if let Some(vcd) = &run.vcd {
            // Traces dominate artifact volume; buffer the write.
            let file = std::fs::File::create(dir.join(format!("{}.vcd", run.name)))?;
            let mut out = std::io::BufWriter::new(file);
            out.write_all(vcd.as_bytes())?;
            out.flush()?;
        }
    }
    for (mem, image) in &report.sim_mems {
        std::fs::write(dir.join(format!("{mem}.mem")), stimulus::emit(mem, image))?;
    }
    Ok(())
}

fn cmd_compile(args: &[String]) -> ExitCode {
    // Reuse the test parser; --out is mandatory and doubles as artifacts.
    let mut rewritten: Vec<String> = Vec::new();
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--out" {
            match it.next() {
                Some(dir) => out = Some(dir.clone()),
                None => {
                    eprintln!("'--out' needs a directory");
                    return ExitCode::from(2);
                }
            }
        } else {
            rewritten.push(arg.clone());
        }
    }
    let Some(out) = out else {
        eprintln!("'compile' needs --out DIR");
        return ExitCode::from(2);
    };
    rewritten.push("--artifacts".to_string());
    rewritten.push(out);

    // Compile-only: run the flow with no stimuli; designs that read
    // uninitialized inputs would fail the golden run, so emit artifacts
    // straight from the compiler instead of the full flow.
    let parsed = match parse_test_args(&rewritten) {
        Ok(p) => p,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::from(2);
        }
    };
    let source = match std::fs::read_to_string(&parsed.source) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {}: {e}", parsed.source.display());
            return ExitCode::from(2);
        }
    };
    let name = parsed
        .source
        .file_stem()
        .map(|s| s.to_string_lossy().to_string())
        .unwrap_or_else(|| "design".to_string());
    let design = match nenya::compile(&name, &source, &parsed.options.compile) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::from(2);
        }
    };
    let dir = parsed.artifacts.expect("--out mapped to artifacts");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::from(2);
    }
    let rtg_doc = nenya::xml::emit_rtg(&design.rtg);
    let mut files = vec![("rtg.xml".to_string(), rtg_doc.to_pretty_string())];
    for config in &design.configs {
        let dp_doc = nenya::xml::emit_datapath(&config.datapath);
        let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
        let hds = xform::apply(&xform::stylesheets::datapath_to_hds(), dp_doc.root())
            .unwrap_or_default();
        let behavior = xform::apply(&xform::stylesheets::fsm_to_behavior(), fsm_doc.root())
            .unwrap_or_default();
        files.push((format!("{}_datapath.xml", config.name), dp_doc.to_pretty_string()));
        files.push((format!("{}_fsm.xml", config.name), fsm_doc.to_pretty_string()));
        files.push((format!("{}.hds", config.name), hds));
        files.push((format!("{}_fsm.java", config.name), behavior));
        println!(
            "{}: {} operators, {} states",
            config.name,
            config.datapath.operator_count(),
            config.fsm.state_count()
        );
    }
    for (file, contents) in files {
        if let Err(e) = std::fs::write(dir.join(&file), contents) {
            eprintln!("cannot write {file}: {e}");
            return ExitCode::from(2);
        }
    }
    println!("artifacts written to {}", dir.display());
    ExitCode::SUCCESS
}
