//! The `fpgatest-serve-v1` campaign daemon and its client.
//!
//! `fpgatest serve` turns the test flow into a long-running service:
//! clients connect over TCP, speak newline-delimited JSON, and submit
//! **test** or **fault-campaign** jobs that execute on a bounded worker
//! pool. The daemon keeps an LRU [`DesignCache`] of prepared designs
//! keyed by source content, so a design submitted many times (CI
//! matrix, fuzz reruns, parameter sweeps) is compiled and transformed
//! **once** and simulated many times.
//!
//! ## Protocol
//!
//! One request per line, one-or-more response lines per request. Every
//! server-originated line is a JSON object with a `schema` field: serve
//! responses carry `fpgatest-serve-v1`, interleaved live events carry
//! `fpgatest-events-v1` (see [`crate::events`]) — clients demultiplex
//! per line.
//!
//! Requests (`type` field): `submit` (with a `job` object), `status`,
//! `result` (replay a finished job's `job-finished` line — how a
//! reconnecting client resumes by id), `cancel`, `stats`, `shutdown`
//! (optionally `"shed":true` to cancel the queue instead of draining
//! it). Responses: `job-accepted`, `job-finished`, `status`, `stats`,
//! `shutdown-ack`, `error` (with a machine-readable `code`:
//! `bad-request`, `draining`, `overloaded`, `frame-too-long`,
//! `deadline`, `unknown-job`).
//!
//! ```text
//! → {"type":"submit","job":{"kind":"test","name":"scale","source":"...","events":true}}
//! ← {"schema":"fpgatest-serve-v1","type":"job-accepted","id":1}
//! ← {"schema":"fpgatest-events-v1","seq":0,"event":"span-start","name":"flow.golden"}
//! ← ...
//! ← {"schema":"fpgatest-events-v1","seq":9,"event":"campaign-finished","kind":"serve",...}
//! ← {"schema":"fpgatest-serve-v1","type":"job-finished","id":1,"verdict":"pass",...}
//! ```
//!
//! ## Job isolation
//!
//! Each job runs on its own thread behind the same two shields the
//! suite runner uses (see [`crate::suite`]): a `catch_unwind` so a
//! panicking flow becomes a `crash` verdict (exit code 3) instead of
//! killing a worker, and a wall-clock watchdog (`wall_ms`, defaulting
//! to [`ServeOptions::default_wall_ms`]) that turns a hung job into a
//! `timeout` verdict (exit code 4) while the worker moves on. A tripped
//! watchdog *abandons* the job thread (it still stops at `max_ticks`);
//! its event stream is muted once the final verdict is sent.
//!
//! Verdicts and exit codes match the in-process suite runner exactly:
//! `pass`→0, `fail`→1, `error`→2, `crash`→3, `timeout`→4 (and
//! `cancelled`→2 for jobs cancelled while queued or shed while
//! draining). With retries enabled, a job that exhausts its attempts on
//! `crash`/`timeout` reports the distinct `quarantined` verdict (last
//! failure's exit code) so poison jobs are visible instead of looping.
//!
//! ## Fault tolerance
//!
//! The daemon assumes its parts fail routinely and contains each blast
//! radius:
//!
//! * a **supervisor** thread watches the worker pool; a worker that
//!   dies mid-job (a panic that somehow escapes both shields — or the
//!   `--chaos` hook below) has its job requeued at the front (the death
//!   charged as one attempt) and a replacement worker spawned, so every
//!   accepted job still reaches exactly one terminal outcome;
//! * **retries**: `crash`/`timeout` outcomes rerun up to
//!   [`ServeOptions::retries`] times with bounded exponential backoff
//!   plus deterministic jitter; the attempt count rides on
//!   `job-finished` and the ledger line, and a job that exhausts its
//!   budget is **quarantined** (typed verdict, listed in `stats`);
//! * **backpressure**: the admission queue is bounded
//!   ([`ServeOptions::max_queue`]); beyond it submissions get a typed
//!   `overloaded` rejection immediately instead of queueing without
//!   bound;
//! * **deadlines**: a connection with a half-read request line older
//!   than [`ServeOptions::read_deadline_ms`] gets a typed `deadline`
//!   error and is closed (slow-loris); a line longer than
//!   [`ServeOptions::max_line_len`] gets `frame-too-long` (OOM guard);
//!   a connection idle past [`ServeOptions::idle_ms`] with no pending
//!   jobs is closed silently;
//! * **chaos hook**: [`ServeOptions::chaos`] seeds a deterministic
//!   worker-killer (a fraction of dequeues panic the worker before the
//!   job's own shields arm) so the supervisor/retry machinery is
//!   testable end to end.
//!
//! ## Shutdown
//!
//! A `shutdown` request (or SIGINT delivered to the CLI) flips the
//! server into draining mode: new submissions are rejected with a typed
//! `draining` error, queued and in-flight jobs run to completion
//! (bounded by their watchdogs), every event-streaming connection gets
//! its final `campaign-finished`, and only then is `shutdown-ack` sent
//! and the listener closed. `{"type":"shutdown","shed":true}` is the
//! load-shedding variant: queued-but-not-started jobs are *cancelled*
//! (each still gets its terminal `job-finished`, verdict `cancelled`)
//! and only the in-flight remainder is awaited.

use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::cache::DesignCache;
use crate::events::{Event, EventSink, EVENTS_SCHEMA};
use crate::faults::{campaign_json, run_campaign, CampaignOptions, InjectionOutcome};
use crate::flow::{Engine, FlowError, FlowOptions, TestFlow, TestReport};
use crate::ledger::{self, LedgerEntry};
use crate::stimulus::Stimulus;
use crate::suite::TestCase;
use crate::telemetry::Json;
use nenya::schedule::SchedulePolicy;

/// Schema tag carried by every serve-protocol line.
pub const SERVE_SCHEMA: &str = "fpgatest-serve-v1";

// ---------------------------------------------------------------------------
// Job specification
// ---------------------------------------------------------------------------

/// What a job runs: one functional test, or one fault campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Compile (or fetch from cache) and simulate once, compare against
    /// the golden run.
    Test,
    /// A [`crate::faults`] injection campaign over the design.
    Faults,
}

impl JobKind {
    /// The protocol word (`test` / `faults`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Test => "test",
            JobKind::Faults => "faults",
        }
    }

    fn parse(word: &str) -> Result<JobKind, String> {
        match word {
            "test" => Ok(JobKind::Test),
            "faults" => Ok(JobKind::Faults),
            other => Err(format!("unknown job kind '{other}' (want test|faults)")),
        }
    }
}

/// One submitted unit of work, as carried in a `submit` request's `job`
/// object. Everything is plain data so specs cross threads freely.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Test or fault campaign.
    pub kind: JobKind,
    /// Design name (cache key *display* only; the cache keys on
    /// content).
    pub name: String,
    /// Source program text.
    pub source: String,
    /// Initial memory contents, `(memory, stimulus)` pairs.
    pub stimuli: Vec<(String, Stimulus)>,
    /// Compiler datapath width override.
    pub width: Option<u32>,
    /// Temporal-partition count override.
    pub partitions: Option<usize>,
    /// Scheduling policy override (`list` / `one-op-per-state`).
    pub policy: Option<SchedulePolicy>,
    /// Enable the compiler optimizer.
    pub optimize: bool,
    /// Simulation engine.
    pub engine: Engine,
    /// Tick watchdog override per configuration.
    pub max_ticks: Option<u64>,
    /// Wall-clock watchdog override in milliseconds (default:
    /// [`ServeOptions::default_wall_ms`]).
    pub wall_ms: Option<u64>,
    /// Stream `fpgatest-events-v1` lines back on the submitting
    /// connection while the job runs.
    pub events: bool,
    /// Fault campaigns: sampling seed.
    pub seed: u64,
    /// Fault campaigns: number of injections.
    pub sites: usize,
    /// Fault campaigns: worker-shard count (0/1 = the sequential path;
    /// larger values run the work-stealing sharded runtime with
    /// bit-identical verdicts).
    pub shards: usize,
    /// Test hook: panic inside the flow (exercises crash isolation).
    pub planted_panic: bool,
    /// Bypass the design cache (cold-path; used by benchmarks).
    pub no_cache: bool,
}

impl JobSpec {
    /// A test job over `source` with default options.
    pub fn test(name: &str, source: &str) -> JobSpec {
        JobSpec {
            kind: JobKind::Test,
            name: name.to_string(),
            source: source.to_string(),
            stimuli: Vec::new(),
            width: None,
            partitions: None,
            policy: None,
            optimize: false,
            engine: Engine::default(),
            max_ticks: None,
            wall_ms: None,
            events: false,
            seed: 1,
            sites: 50,
            shards: 0,
            planted_panic: false,
            no_cache: false,
        }
    }

    /// A fault-campaign job over `source`.
    pub fn faults(name: &str, source: &str, seed: u64, sites: usize) -> JobSpec {
        let mut spec = JobSpec::test(name, source);
        spec.kind = JobKind::Faults;
        spec.seed = seed;
        spec.sites = sites;
        spec
    }

    /// Adds a stimulus, builder-style.
    #[must_use]
    pub fn stimulus(mut self, mem: impl Into<String>, stimulus: Stimulus) -> JobSpec {
        self.stimuli.push((mem.into(), stimulus));
        self
    }

    /// Serializes to the protocol's `job` object.
    pub fn to_json(&self) -> Json {
        let stimuli: Vec<Json> = self
            .stimuli
            .iter()
            .map(|(mem, stimulus)| {
                let words: Vec<Json> = stimulus
                    .words
                    .iter()
                    .map(|(addr, value)| {
                        Json::Arr(vec![Json::from(*addr as u64), Json::from(*value)])
                    })
                    .collect();
                let mut pairs = vec![
                    ("mem", Json::from(mem.as_str())),
                    ("words", Json::Arr(words)),
                ];
                if let Some(size) = stimulus.size {
                    pairs.push(("size", Json::from(size)));
                }
                Json::obj(pairs)
            })
            .collect();
        let mut pairs = vec![
            ("kind", Json::from(self.kind.as_str())),
            ("name", Json::from(self.name.as_str())),
            ("source", Json::from(self.source.as_str())),
            ("stimuli", Json::Arr(stimuli)),
            ("optimize", Json::from(self.optimize)),
            ("engine", Json::from(self.engine.to_string())),
            ("events", Json::from(self.events)),
            ("seed", Json::from(self.seed)),
            ("sites", Json::from(self.sites)),
            ("shards", Json::from(self.shards)),
            ("planted_panic", Json::from(self.planted_panic)),
            ("no_cache", Json::from(self.no_cache)),
        ];
        if let Some(width) = self.width {
            pairs.push(("width", Json::from(u64::from(width))));
        }
        if let Some(partitions) = self.partitions {
            pairs.push(("partitions", Json::from(partitions)));
        }
        if let Some(policy) = self.policy {
            pairs.push(("policy", Json::from(policy_name(policy))));
        }
        if let Some(ticks) = self.max_ticks {
            pairs.push(("max_ticks", Json::from(ticks)));
        }
        if let Some(wall) = self.wall_ms {
            pairs.push(("wall_ms", Json::from(wall)));
        }
        Json::obj(pairs)
    }

    /// Parses a `job` object. Only `kind`, `name`, and `source` are
    /// required; everything else defaults.
    pub fn from_json(json: &Json) -> Result<JobSpec, String> {
        let kind = JobKind::parse(require_str(json, "kind")?)?;
        let name = require_str(json, "name")?.to_string();
        let source = require_str(json, "source")?.to_string();
        let mut spec = JobSpec::test(&name, &source);
        spec.kind = kind;
        if let Some(stimuli) = json.get("stimuli") {
            let list = stimuli
                .as_array()
                .ok_or_else(|| "stimuli must be an array".to_string())?;
            for entry in list {
                let mem = require_str(entry, "mem")?.to_string();
                let mut stimulus = Stimulus {
                    mem: None,
                    size: None,
                    words: Vec::new(),
                };
                if let Some(size) = entry.get("size").and_then(Json::as_u64) {
                    stimulus.size = Some(size as usize);
                }
                let words = entry
                    .get("words")
                    .and_then(Json::as_array)
                    .ok_or_else(|| format!("stimulus '{mem}' needs a words array"))?;
                for pair in words {
                    let pair = pair
                        .as_array()
                        .filter(|p| p.len() == 2)
                        .ok_or_else(|| format!("stimulus '{mem}': words are [addr, value] pairs"))?;
                    let addr = pair[0]
                        .as_u64()
                        .ok_or_else(|| format!("stimulus '{mem}': bad address"))?;
                    let value = pair[1]
                        .as_f64()
                        .ok_or_else(|| format!("stimulus '{mem}': bad value"))?;
                    stimulus.words.push((addr as usize, value as i64));
                }
                spec.stimuli.push((mem, stimulus));
            }
        }
        if let Some(width) = json.get("width").and_then(Json::as_u64) {
            spec.width = Some(width as u32);
        }
        if let Some(partitions) = json.get("partitions").and_then(Json::as_u64) {
            spec.partitions = Some(partitions as usize);
        }
        if let Some(policy) = json.get("policy").and_then(Json::as_str) {
            spec.policy = Some(parse_policy(policy)?);
        }
        if let Some(optimize) = json.get("optimize").and_then(Json::as_bool) {
            spec.optimize = optimize;
        }
        if let Some(engine) = json.get("engine").and_then(Json::as_str) {
            spec.engine = engine.parse::<Engine>().map_err(|e| e.to_string())?;
        }
        if let Some(ticks) = json.get("max_ticks").and_then(Json::as_u64) {
            spec.max_ticks = Some(ticks);
        }
        if let Some(wall) = json.get("wall_ms").and_then(Json::as_u64) {
            spec.wall_ms = Some(wall);
        }
        if let Some(events) = json.get("events").and_then(Json::as_bool) {
            spec.events = events;
        }
        if let Some(seed) = json.get("seed").and_then(Json::as_u64) {
            spec.seed = seed;
        }
        if let Some(sites) = json.get("sites").and_then(Json::as_u64) {
            spec.sites = sites as usize;
        }
        if let Some(shards) = json.get("shards").and_then(Json::as_u64) {
            spec.shards = shards as usize;
        }
        if let Some(planted) = json.get("planted_panic").and_then(Json::as_bool) {
            spec.planted_panic = planted;
        }
        if let Some(no_cache) = json.get("no_cache").and_then(Json::as_bool) {
            spec.no_cache = no_cache;
        }
        Ok(spec)
    }
}

fn policy_name(policy: SchedulePolicy) -> &'static str {
    match policy {
        SchedulePolicy::OneOpPerState => "one-op-per-state",
        SchedulePolicy::List => "list",
    }
}

fn parse_policy(word: &str) -> Result<SchedulePolicy, String> {
    match word {
        "list" => Ok(SchedulePolicy::List),
        "one-op-per-state" => Ok(SchedulePolicy::OneOpPerState),
        other => Err(format!(
            "unknown policy '{other}' (want list|one-op-per-state)"
        )),
    }
}

fn require_str<'j>(json: &'j Json, key: &str) -> Result<&'j str, String> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing or non-string field '{key}'"))
}

// ---------------------------------------------------------------------------
// Job outcome
// ---------------------------------------------------------------------------

/// The final word on one job, as carried by a `job-finished` line.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Server-assigned job id.
    pub id: u64,
    /// `pass`, `fail`, `error`, `crash`, `timeout`, or `cancelled` —
    /// the same taxonomy the suite runner uses.
    pub verdict: String,
    /// The exit code the in-process runner would have produced for this
    /// job alone: 0/1/2/3/4.
    pub exit_code: i32,
    /// Wall-clock seconds from dequeue to verdict.
    pub wall_seconds: f64,
    /// Execution attempts charged to the job: 1 for the common case,
    /// more when retries or worker deaths reran it, 0 for jobs that
    /// never started (cancelled while queued / shed).
    pub attempts: u64,
    /// Failure detail (empty on pass).
    pub detail: String,
    /// Job-kind-specific report: a test summary, or the full
    /// `fpgatest-faults-v1` campaign object.
    pub report: Json,
}

impl JobOutcome {
    /// Serializes to a `job-finished` response line.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::from(SERVE_SCHEMA)),
            ("type", Json::from("job-finished")),
            ("id", Json::from(self.id)),
            ("verdict", Json::from(self.verdict.as_str())),
            ("exit_code", Json::from(i64::from(self.exit_code))),
            ("wall_seconds", Json::from(self.wall_seconds)),
            ("attempts", Json::from(self.attempts)),
            ("detail", Json::from(self.detail.as_str())),
            ("report", self.report.clone()),
        ])
    }

    /// Parses a `job-finished` line.
    pub fn from_json(json: &Json) -> Result<JobOutcome, String> {
        Ok(JobOutcome {
            id: json
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("job-finished without id")?,
            verdict: require_str(json, "verdict")?.to_string(),
            exit_code: json
                .get("exit_code")
                .and_then(Json::as_f64)
                .ok_or("job-finished without exit_code")? as i32,
            wall_seconds: json
                .get("wall_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
            attempts: json.get("attempts").and_then(Json::as_u64).unwrap_or(1),
            detail: json
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            report: json.get("report").cloned().unwrap_or(Json::Null),
        })
    }
}

// ---------------------------------------------------------------------------
// Requests and responses
// ---------------------------------------------------------------------------

enum Request {
    Submit(Box<JobSpec>),
    Status(u64),
    /// Replay a finished job's `job-finished` line (or its current
    /// status when not finished) — the resume-by-id path a reconnecting
    /// client uses after losing its connection mid-wait.
    Result(u64),
    Cancel(u64),
    Stats,
    Shutdown {
        /// Load-shedding drain: cancel the queue instead of running it.
        shed: bool,
    },
}

fn parse_request(json: &Json) -> Result<Request, String> {
    match require_str(json, "type")? {
        "submit" => {
            let job = json.get("job").ok_or("submit without a job object")?;
            Ok(Request::Submit(Box::new(JobSpec::from_json(job)?)))
        }
        "status" => Ok(Request::Status(request_id(json)?)),
        "result" => Ok(Request::Result(request_id(json)?)),
        "cancel" => Ok(Request::Cancel(request_id(json)?)),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown {
            shed: json.get("shed").and_then(Json::as_bool).unwrap_or(false),
        }),
        other => Err(format!(
            "unknown request type '{other}' (want submit|status|result|cancel|stats|shutdown)"
        )),
    }
}

fn request_id(json: &Json) -> Result<u64, String> {
    json.get("id")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing numeric field 'id'".to_string())
}

fn resp_error(code: &str, message: &str) -> Json {
    Json::obj([
        ("schema", Json::from(SERVE_SCHEMA)),
        ("type", Json::from("error")),
        ("code", Json::from(code)),
        ("message", Json::from(message)),
    ])
}

fn resp_status(id: u64, state: &JobState) -> Json {
    let mut pairs = vec![
        ("schema", Json::from(SERVE_SCHEMA)),
        ("type", Json::from("status")),
        ("id", Json::from(id)),
        ("state", Json::from(state.as_str())),
    ];
    if let JobState::Finished { outcome } = state {
        pairs.push(("verdict", Json::from(outcome.verdict.as_str())));
    }
    Json::obj(pairs)
}

// ---------------------------------------------------------------------------
// Connection plumbing
// ---------------------------------------------------------------------------

/// Shared, line-atomic writer onto one client connection. Responses and
/// event lines from several threads interleave *per line*, never
/// mid-line.
#[derive(Clone)]
struct LineSender {
    stream: Arc<Mutex<TcpStream>>,
    /// Set on the first write failure (client hung up / EPIPE). Once
    /// dead, further sends are dropped without touching the socket, so
    /// an event-streaming job whose client vanished finishes normally
    /// instead of burning syscalls per event line.
    dead: Arc<AtomicBool>,
}

impl LineSender {
    fn new(stream: TcpStream) -> LineSender {
        LineSender {
            stream: Arc::new(Mutex::new(stream)),
            dead: Arc::new(AtomicBool::new(false)),
        }
    }

    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Writes `line` plus a newline under the connection lock. Errors
    /// are swallowed: a vanished client must never take a worker down.
    fn send_line(&self, line: &[u8]) {
        if self.is_dead() {
            return;
        }
        let mut guard = self.stream.lock().unwrap_or_else(|p| p.into_inner());
        let failed = guard.write_all(line).is_err()
            || guard.write_all(b"\n").is_err()
            || guard.flush().is_err();
        if failed {
            self.dead.store(true, Ordering::SeqCst);
        }
    }

    fn send_json(&self, json: &Json) {
        self.send_line(json.emit().as_bytes());
    }
}

/// `Write` adapter turning an [`EventSink`]'s byte stream back into
/// whole lines sent through a [`LineSender`]. The sink writes one full
/// line + `\n` then flushes, so `flush` always sees complete lines.
/// Once `muted` is set (job verdict delivered) stragglers from an
/// abandoned, watchdog-tripped job thread are dropped instead of
/// trailing after `campaign-finished`.
struct SinkToConnection {
    sender: LineSender,
    buf: Vec<u8>,
    muted: Arc<AtomicBool>,
}

impl Write for SinkToConnection {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(data);
        Ok(data.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            if !self.muted.load(Ordering::SeqCst) {
                self.sender.send_line(&line[..line.len() - 1]);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads executing jobs (min 1).
    pub workers: usize,
    /// LRU capacity of the prepared-design cache.
    pub cache_capacity: usize,
    /// Wall-clock watchdog applied to jobs that do not set `wall_ms`.
    pub default_wall_ms: u64,
    /// Append one `fpgatest-ledger-v1` line per completed job here.
    pub ledger: Option<PathBuf>,
    /// Reruns granted to a job whose attempt ends in `crash` or
    /// `timeout` (0 = report the first failure as-is; N = up to N+1
    /// attempts, then the `quarantined` verdict).
    pub retries: u32,
    /// First retry backoff in milliseconds; doubles per attempt, capped
    /// at [`BACKOFF_CAP_MS`], plus up to 50% deterministic jitter.
    pub backoff_base_ms: u64,
    /// Admission-queue bound: submissions past this many *queued* jobs
    /// get a typed `overloaded` rejection (0 = unbounded).
    pub max_queue: usize,
    /// Longest request line accepted before the typed `frame-too-long`
    /// error closes the connection.
    pub max_line_len: usize,
    /// How long a connection may sit on a *partial* request line before
    /// the typed `deadline` error closes it (slow-loris guard).
    pub read_deadline_ms: u64,
    /// How long a connection with no buffered bytes and no pending jobs
    /// may idle before being closed silently.
    pub idle_ms: u64,
    /// Chaos-test hook: deterministic seed for the worker-killer (a
    /// fraction of job dequeues panic the worker thread before the
    /// job's own shields arm). `None` in production.
    pub chaos: Option<u64>,
}

/// Retry backoff ceiling — exponential growth stops here.
pub const BACKOFF_CAP_MS: u64 = 2_000;

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            cache_capacity: 8,
            default_wall_ms: 120_000,
            ledger: None,
            retries: 0,
            backoff_base_ms: 50,
            max_queue: 1024,
            max_line_len: 8 * 1024 * 1024,
            read_deadline_ms: 10_000,
            idle_ms: 600_000,
            chaos: None,
        }
    }
}

/// Lifecycle of one job, as reported by `status`. Finished jobs keep
/// their full outcome so a `result` request can replay the
/// `job-finished` line to a client that reconnected.
#[derive(Debug, Clone)]
enum JobState {
    Queued,
    Running,
    Cancelled,
    Finished { outcome: Box<JobOutcome> },
}

impl JobState {
    fn as_str(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Cancelled => "cancelled",
            JobState::Finished { .. } => "finished",
        }
    }
}

#[derive(Clone)]
struct QueuedJob {
    id: u64,
    spec: JobSpec,
    sender: LineSender,
    /// Attempts already charged to this job (worker deaths requeue with
    /// the death counted, so a poison job cannot crash workers forever).
    attempt: u32,
    /// The submitting connection's accepted-but-unfinished job count —
    /// the idle-deadline must not close a connection still owed a
    /// `job-finished` line.
    conn_pending: Arc<AtomicU64>,
}

/// Queue + drain bookkeeping, all transitions under one lock so a
/// `draining` flip and the submissions racing it serialize cleanly.
struct WorkState {
    queue: VecDeque<QueuedJob>,
    /// Accepted jobs not yet finished (queued + running).
    inflight: u64,
    draining: bool,
}

struct ServerState {
    options: ServeOptions,
    addr: SocketAddr,
    cache: DesignCache,
    work: Mutex<WorkState>,
    /// Workers wait here for jobs; shutdown broadcasts the drain.
    queue_signal: Condvar,
    /// Shutdown waits here for `inflight` to reach zero.
    idle: Condvar,
    jobs: Mutex<HashMap<u64, JobState>>,
    next_id: AtomicU64,
    stopped: AtomicBool,
    submitted: AtomicU64,
    finished: AtomicU64,
    rejected: AtomicU64,
    /// Submissions bounced by the admission-queue bound.
    overloaded: AtomicU64,
    /// Queued jobs cancelled by a shedding shutdown.
    shed: AtomicU64,
    /// Retry attempts executed (not counting each job's first).
    retried: AtomicU64,
    /// Workers respawned by the supervisor.
    restarts: AtomicU64,
    /// `(id, kind:name)` of jobs quarantined after exhausting retries.
    quarantined: Mutex<Vec<(u64, String)>>,
    /// Position in the chaos worker-killer's deterministic stream.
    chaos_ticks: AtomicU64,
    /// Serializes ledger appends across workers.
    ledger_lock: Mutex<()>,
}

impl ServerState {
    fn lock_work(&self) -> std::sync::MutexGuard<'_, WorkState> {
        self.work.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, HashMap<u64, JobState>> {
        self.jobs.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn lock_quarantined(&self) -> std::sync::MutexGuard<'_, Vec<(u64, String)>> {
        self.quarantined.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The bound daemon. [`Server::run`] blocks until a shutdown request
/// drains it.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    /// The supervisor owns the worker pool (spawning, death detection,
    /// respawn); the server only joins the supervisor.
    supervisor: JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7411`, port 0 for ephemeral) and
    /// starts the worker pool. Jobs flow once [`run`](Server::run) is
    /// called.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, options: ServeOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let state = Arc::new(ServerState {
            cache: DesignCache::new(options.cache_capacity),
            options,
            addr: local,
            work: Mutex::new(WorkState {
                queue: VecDeque::new(),
                inflight: 0,
                draining: false,
            }),
            queue_signal: Condvar::new(),
            idle: Condvar::new(),
            jobs: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stopped: AtomicBool::new(false),
            submitted: AtomicU64::new(0),
            finished: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            quarantined: Mutex::new(Vec::new()),
            chaos_ticks: AtomicU64::new(0),
            ledger_lock: Mutex::new(()),
        });
        let supervisor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("serve-supervisor".to_string())
                .spawn(move || supervisor_loop(&state))
                .expect("spawn supervisor thread")
        };
        Ok(Server {
            listener,
            state,
            supervisor,
        })
    }

    /// The address actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Asks a running server to drain and stop, from outside a
    /// connection (the CLI's SIGINT hook). Equivalent to a `shutdown`
    /// request, minus the ack line.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until drained by a `shutdown` request (or a
    /// [`ShutdownHandle`]). Every connection gets its own reader
    /// thread; jobs run on the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates listener accept errors other than transient ones.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.state.stopped.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("serve-conn".to_string())
                .spawn(move || handle_connection(&state, stream));
        }
        self.state.queue_signal.notify_all();
        let _ = self.supervisor.join();
        Ok(())
    }
}

/// Out-of-band drain trigger for [`Server::run`], used by the CLI's
/// SIGINT handling.
pub struct ShutdownHandle {
    state: Arc<ServerState>,
}

impl ShutdownHandle {
    /// Drains the server: stops accepting, waits for in-flight jobs,
    /// then unblocks the accept loop.
    pub fn shutdown(&self) {
        drain(&self.state);
        finish_stop(&self.state);
    }
}

/// Flips draining on and blocks until every accepted job has finished.
fn drain(state: &ServerState) {
    let mut work = state.lock_work();
    work.draining = true;
    state.queue_signal.notify_all();
    while work.inflight > 0 {
        work = state.idle.wait(work).unwrap_or_else(|p| p.into_inner());
    }
}

/// Marks the server stopped and pokes the accept loop awake.
fn finish_stop(state: &ServerState) {
    state.stopped.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(state.addr);
}

/// Poll interval for the connection read loop — short enough that
/// deadline bookkeeping and the server-stopped check stay responsive,
/// long enough to cost nothing.
const READ_POLL_MS: u64 = 100;

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    // The protocol is request/response over tiny lines; Nagle + delayed
    // ACK would add ~40ms to every exchange.
    let _ = stream.set_nodelay(true);
    // Reads poll instead of blocking forever, so a silent client cannot
    // pin this thread past its deadlines (slow-loris guard).
    let _ = stream.set_read_timeout(Some(Duration::from_millis(READ_POLL_MS)));
    let Ok(mut read_half) = stream.try_clone() else {
        return;
    };
    let sender = LineSender::new(stream);
    let conn_pending = Arc::new(AtomicU64::new(0));
    let max_len = state.options.max_line_len.max(1);
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // When the current (incomplete) request line started arriving.
    let mut partial_since: Option<Instant> = None;
    let mut idle_since = Instant::now();
    'conn: loop {
        if state.stopped.load(Ordering::SeqCst) || sender.is_dead() {
            break;
        }
        match read_half.read(&mut chunk) {
            Ok(0) => break, // client closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                idle_since = Instant::now();
                if partial_since.is_none() {
                    partial_since = Some(Instant::now());
                }
                while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    if pos > max_len {
                        sender.send_json(&resp_error(
                            "frame-too-long",
                            &format!("request line exceeds {max_len} bytes"),
                        ));
                        break 'conn;
                    }
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    partial_since = (!buf.is_empty()).then(Instant::now);
                    let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
                    if line.trim().is_empty() {
                        continue;
                    }
                    if !dispatch_request(state, &line, &sender, &conn_pending) {
                        break 'conn;
                    }
                }
                // No complete line and the buffer already too big: the
                // client is streaming a newline-free frame; refuse it
                // before it grows without bound.
                if buf.len() > max_len {
                    sender.send_json(&resp_error(
                        "frame-too-long",
                        &format!("request line exceeds {max_len} bytes"),
                    ));
                    break;
                }
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                if buf.is_empty() {
                    // Fully idle connection: close silently once it has
                    // no pending jobs and outlived the idle deadline.
                    if conn_pending.load(Ordering::SeqCst) == 0
                        && idle_since.elapsed() >= Duration::from_millis(state.options.idle_ms)
                    {
                        break;
                    }
                } else if partial_since.is_some_and(|since| {
                    since.elapsed() >= Duration::from_millis(state.options.read_deadline_ms)
                }) {
                    sender.send_json(&resp_error(
                        "deadline",
                        &format!(
                            "request line stalled past {} ms",
                            state.options.read_deadline_ms
                        ),
                    ));
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => break,
        }
    }
}

/// Handles one request line; returns `false` when the connection should
/// close (shutdown handled).
fn dispatch_request(
    state: &Arc<ServerState>,
    line: &str,
    sender: &LineSender,
    conn_pending: &Arc<AtomicU64>,
) -> bool {
    let request = match Json::parse(line) {
        Ok(json) => parse_request(&json),
        Err(e) => Err(format!("unparseable request: {e}")),
    };
    match request {
        Err(message) => sender.send_json(&resp_error("bad-request", &message)),
        Ok(Request::Submit(spec)) => submit_job(state, *spec, sender, conn_pending),
        Ok(Request::Status(id)) => {
            let jobs = state.lock_jobs();
            match jobs.get(&id) {
                Some(job_state) => sender.send_json(&resp_status(id, job_state)),
                None => sender.send_json(&resp_error("unknown-job", &format!("no job {id}"))),
            }
        }
        Ok(Request::Result(id)) => {
            let jobs = state.lock_jobs();
            match jobs.get(&id) {
                // Replay the terminal line; a reconnected client
                // resumes exactly where its old connection died.
                Some(JobState::Finished { outcome }) => {
                    let json = outcome.to_json();
                    drop(jobs);
                    sender.send_json(&json);
                }
                Some(job_state) => sender.send_json(&resp_status(id, job_state)),
                None => sender.send_json(&resp_error("unknown-job", &format!("no job {id}"))),
            }
        }
        Ok(Request::Cancel(id)) => {
            let mut jobs = state.lock_jobs();
            match jobs.get_mut(&id) {
                // Only queued jobs can be cancelled; the worker
                // notices the flag at dequeue and reports the
                // `cancelled` verdict. Running/finished jobs just
                // report their current state.
                Some(job_state) => {
                    if matches!(job_state, JobState::Queued) {
                        *job_state = JobState::Cancelled;
                    }
                    let snapshot = job_state.clone();
                    drop(jobs);
                    sender.send_json(&resp_status(id, &snapshot));
                }
                None => sender.send_json(&resp_error("unknown-job", &format!("no job {id}"))),
            }
        }
        Ok(Request::Stats) => sender.send_json(&stats_json(state)),
        Ok(Request::Shutdown { shed }) => {
            if shed {
                shed_queue(state);
            }
            drain(state);
            sender.send_json(&Json::obj([
                ("schema", Json::from(SERVE_SCHEMA)),
                ("type", Json::from("shutdown-ack")),
                ("finished", Json::from(state.finished.load(Ordering::SeqCst))),
                ("rejected", Json::from(state.rejected.load(Ordering::SeqCst))),
                ("shed", Json::from(state.shed.load(Ordering::SeqCst))),
            ]));
            finish_stop(state);
            return false;
        }
    }
    true
}

/// Load-shedding drain: flips draining on and cancels every job still
/// queued. Each shed job gets its terminal `job-finished` line (verdict
/// `cancelled`, 0 attempts) so the accepted-implies-terminal-outcome
/// invariant holds; in-flight jobs are untouched (the follow-up
/// [`drain`] waits for them).
fn shed_queue(state: &ServerState) {
    let taken: Vec<QueuedJob> = {
        let mut work = state.lock_work();
        work.draining = true;
        work.queue.drain(..).collect()
    };
    for job in taken {
        let outcome = JobOutcome {
            id: job.id,
            verdict: "cancelled".to_string(),
            exit_code: 2,
            wall_seconds: 0.0,
            attempts: 0,
            detail: "shed: server draining under load".to_string(),
            report: Json::Null,
        };
        // Terminal state before notification, as in `run_one_job`.
        state.lock_jobs().insert(
            job.id,
            JobState::Finished {
                outcome: Box::new(outcome.clone()),
            },
        );
        state.finished.fetch_add(1, Ordering::SeqCst);
        state.shed.fetch_add(1, Ordering::SeqCst);
        release_inflight(state);
        job.sender.send_json(&outcome.to_json());
        job.conn_pending.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Drops one unit of the drain count and wakes shutdown waiters. Part
/// of a job's terminal bookkeeping, so it must run *before* the
/// `job-finished` line goes out — a client reacting instantly to that
/// line must already see the job gone from `inflight`. Saturating so
/// the worker loop's panic-path fallback can never underflow.
fn release_inflight(state: &ServerState) {
    let mut work = state.lock_work();
    work.inflight = work.inflight.saturating_sub(1);
    if work.inflight == 0 {
        state.idle.notify_all();
    }
}

fn submit_job(
    state: &Arc<ServerState>,
    spec: JobSpec,
    sender: &LineSender,
    conn_pending: &Arc<AtomicU64>,
) {
    let id = {
        let mut work = state.lock_work();
        if work.draining {
            drop(work);
            state.rejected.fetch_add(1, Ordering::SeqCst);
            sender.send_json(&resp_error(
                "draining",
                "server is draining; new submissions are rejected",
            ));
            return;
        }
        // Backpressure: beyond the admission bound the client gets a
        // typed rejection *now* rather than an unbounded queue later.
        if state.options.max_queue > 0 && work.queue.len() >= state.options.max_queue {
            drop(work);
            state.rejected.fetch_add(1, Ordering::SeqCst);
            state.overloaded.fetch_add(1, Ordering::SeqCst);
            sender.send_json(&resp_error(
                "overloaded",
                &format!(
                    "admission queue full ({} jobs queued); retry later",
                    state.options.max_queue
                ),
            ));
            return;
        }
        let id = state.next_id.fetch_add(1, Ordering::SeqCst);
        state.lock_jobs().insert(id, JobState::Queued);
        work.inflight += 1;
        conn_pending.fetch_add(1, Ordering::SeqCst);
        work.queue.push_back(QueuedJob {
            id,
            spec,
            sender: sender.clone(),
            attempt: 0,
            conn_pending: Arc::clone(conn_pending),
        });
        state.queue_signal.notify_one();
        id
    };
    state.submitted.fetch_add(1, Ordering::SeqCst);
    sender.send_json(&Json::obj([
        ("schema", Json::from(SERVE_SCHEMA)),
        ("type", Json::from("job-accepted")),
        ("id", Json::from(id)),
    ]));
}

fn stats_json(state: &ServerState) -> Json {
    let cache = state.cache.stats();
    let (queued, inflight, draining) = {
        let work = state.lock_work();
        (work.queue.len(), work.inflight, work.draining)
    };
    let quarantined: Vec<Json> = state
        .lock_quarantined()
        .iter()
        .map(|(id, name)| {
            Json::obj([
                ("id", Json::from(*id)),
                ("job", Json::from(name.as_str())),
            ])
        })
        .collect();
    Json::obj([
        ("schema", Json::from(SERVE_SCHEMA)),
        ("type", Json::from("stats")),
        ("submitted", Json::from(state.submitted.load(Ordering::SeqCst))),
        ("finished", Json::from(state.finished.load(Ordering::SeqCst))),
        ("rejected", Json::from(state.rejected.load(Ordering::SeqCst))),
        ("overloaded", Json::from(state.overloaded.load(Ordering::SeqCst))),
        ("shed", Json::from(state.shed.load(Ordering::SeqCst))),
        ("retried", Json::from(state.retried.load(Ordering::SeqCst))),
        ("worker_restarts", Json::from(state.restarts.load(Ordering::SeqCst))),
        ("quarantined", Json::Arr(quarantined)),
        ("queued", Json::from(queued)),
        ("inflight", Json::from(inflight)),
        ("draining", Json::from(draining)),
        ("workers", Json::from(state.options.workers.max(1))),
        (
            "cache",
            Json::obj([
                ("hits", Json::from(cache.hits)),
                ("misses", Json::from(cache.misses)),
                ("evictions", Json::from(cache.evictions)),
                ("entries", Json::from(cache.entries)),
                ("capacity", Json::from(cache.capacity)),
            ]),
        ),
    ])
}

// ---------------------------------------------------------------------------
// Workers
// ---------------------------------------------------------------------------

/// A worker's "currently running" slot, shared with the supervisor. A
/// worker parks its job here before executing; a worker that dies
/// mid-job leaves the slot occupied, which is how the supervisor knows
/// what to requeue.
type WorkerSlot = Arc<Mutex<Option<QueuedJob>>>;

/// How often the supervisor sweeps the pool for dead workers.
const SUPERVISE_POLL_MS: u64 = 20;

fn spawn_worker(state: &Arc<ServerState>, index: usize, slot: &WorkerSlot) -> JoinHandle<()> {
    let state = Arc::clone(state);
    let slot = Arc::clone(slot);
    std::thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .spawn(move || worker_loop(&state, &slot))
        .expect("spawn worker thread")
}

/// Owns the worker pool: spawns it, sweeps for dead workers, requeues
/// the job a dead worker was holding (front of queue, death charged as
/// an attempt), and respawns replacements. Returns once every worker
/// exits naturally at the end of a drain.
fn supervisor_loop(state: &Arc<ServerState>) {
    let mut next_index = state.options.workers.max(1);
    let mut pool: Vec<(JoinHandle<()>, WorkerSlot)> = (0..next_index)
        .map(|index| {
            let slot: WorkerSlot = Arc::new(Mutex::new(None));
            (spawn_worker(state, index, &slot), slot)
        })
        .collect();
    loop {
        std::thread::sleep(Duration::from_millis(SUPERVISE_POLL_MS));
        let mut alive: Vec<(JoinHandle<()>, WorkerSlot)> = Vec::with_capacity(pool.len());
        for (handle, slot) in pool {
            if !handle.is_finished() {
                alive.push((handle, slot));
                continue;
            }
            let _ = handle.join();
            let died_holding = slot.lock().unwrap_or_else(|p| p.into_inner()).take();
            let draining = state.lock_work().draining;
            if let Some(mut job) = died_holding {
                // Abnormal death mid-job: charge the death as one
                // attempt and requeue at the *front* (the job was next
                // in line; starving it would break FIFO fairness and
                // the exactly-once terminal-outcome invariant).
                // `inflight` is untouched — the job never finished.
                job.attempt = job.attempt.saturating_add(1);
                state.lock_jobs().insert(job.id, JobState::Queued);
                state.lock_work().queue.push_front(job);
                state.queue_signal.notify_one();
                state.restarts.fetch_add(1, Ordering::SeqCst);
                let slot: WorkerSlot = Arc::new(Mutex::new(None));
                alive.push((spawn_worker(state, next_index, &slot), slot));
                next_index += 1;
            } else if !draining {
                // Died between jobs (shouldn't happen, but a supervisor
                // that assumes that would be pointless): keep the pool
                // at strength.
                state.restarts.fetch_add(1, Ordering::SeqCst);
                let slot: WorkerSlot = Arc::new(Mutex::new(None));
                alive.push((spawn_worker(state, next_index, &slot), slot));
                next_index += 1;
            }
            // Drained worker with an empty slot: natural exit, let it go.
        }
        pool = alive;
        if pool.is_empty() {
            return;
        }
    }
}

/// Deterministic chaos: when [`ServeOptions::chaos`] is set, roughly a
/// quarter of job dequeues kill the worker thread via panic *before*
/// the job's own isolation arms — exactly the failure the supervisor
/// exists for. SplitMix64 over (seed, tick) keeps runs reproducible.
fn chaos_maybe_kill_worker(state: &ServerState) {
    let Some(seed) = state.options.chaos else { return };
    let tick = state.chaos_ticks.fetch_add(1, Ordering::SeqCst);
    let mut z = seed
        .wrapping_add(tick.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z % 4 == 0 {
        panic!("chaos: worker killed mid-job (seed {seed}, tick {tick})");
    }
}

fn worker_loop(state: &Arc<ServerState>, slot: &WorkerSlot) {
    loop {
        let job = {
            let mut work = state.lock_work();
            loop {
                if let Some(job) = work.queue.pop_front() {
                    break job;
                }
                if work.draining {
                    return;
                }
                work = state
                    .queue_signal
                    .wait(work)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        // Park the job in the supervisor-visible slot before anything
        // can go wrong; clear it only after the bookkeeping below, so a
        // death anywhere in between leaves the job recoverable.
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(job.clone());
        chaos_maybe_kill_worker(state);
        // run_one_job already isolates the flow; this outer shield only
        // guards serve's own bookkeeping so the drain count never leaks.
        let finished = catch_unwind(AssertUnwindSafe(|| run_one_job(state, job)));
        *slot.lock().unwrap_or_else(|p| p.into_inner()) = None;
        if finished.is_err() {
            // run_one_job normally releases the drain count itself as
            // part of terminal bookkeeping; if it panicked before
            // getting there, keep the daemon drainable anyway.
            release_inflight(state);
        }
    }
}

/// Backoff before retry `attempt` (1-based count of attempts already
/// made): exponential from [`ServeOptions::backoff_base_ms`], capped at
/// [`BACKOFF_CAP_MS`], plus up to 50% jitter derived deterministically
/// from `(job_id, attempt)` so co-failing jobs decorrelate without the
/// daemon needing a randomness source.
fn backoff_delay(base_ms: u64, attempt: u64, job_id: u64) -> Duration {
    let base = base_ms.max(1);
    let exp = base
        .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
        .min(BACKOFF_CAP_MS);
    let mut z = job_id
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(attempt);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 31;
    let jitter = z % (exp / 2 + 1);
    Duration::from_millis(exp + jitter)
}

fn run_one_job(state: &Arc<ServerState>, job: QueuedJob) {
    let QueuedJob {
        id,
        spec,
        sender,
        attempt: prior_attempts,
        conn_pending,
    } = job;
    let started = Instant::now();
    let cancelled = {
        let mut jobs = state.lock_jobs();
        match jobs.get(&id) {
            Some(JobState::Cancelled) => true,
            _ => {
                jobs.insert(id, JobState::Running);
                false
            }
        }
    };
    let muted = Arc::new(AtomicBool::new(false));
    let sink = if spec.events {
        EventSink::to_writer(Box::new(SinkToConnection {
            sender: sender.clone(),
            buf: Vec::new(),
            muted: Arc::clone(&muted),
        }))
    } else {
        EventSink::disabled()
    };
    // Worker deaths already charged attempts; the retry budget is
    // shared between deaths and executed failures, so a job that kills
    // every worker it touches still terminates (quarantined).
    let max_attempts = u64::from(state.options.retries) + 1;
    let mut attempts = u64::from(prior_attempts);
    let (mut verdict, exit_code, mut detail, report) = if cancelled {
        (
            "cancelled".to_string(),
            2,
            "cancelled while queued".to_string(),
            Json::Null,
        )
    } else {
        loop {
            attempts += 1;
            let result = execute_with_watchdog(state, &spec, &sink);
            let retryable = result.0 == "crash" || result.0 == "timeout";
            if retryable && attempts < max_attempts {
                state.retried.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(backoff_delay(
                    state.options.backoff_base_ms,
                    attempts,
                    id,
                ));
                continue;
            }
            break result;
        }
    };
    if (verdict == "crash" || verdict == "timeout")
        && max_attempts > 1
        && attempts >= max_attempts
    {
        // Retries were granted and all exhausted: poison. The typed
        // verdict keeps it out of pass/fail statistics and the stats
        // listing makes it visible to operators.
        detail = format!("quarantined after {attempts} attempts; last failure: {verdict} ({detail})");
        verdict = "quarantined".to_string();
        state
            .lock_quarantined()
            .push((id, format!("{}:{}", spec.kind.as_str(), spec.name)));
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    if sink.is_enabled() {
        // The stream contract: every event-streaming job ends with a
        // serve-level campaign-finished, whatever the verdict.
        sink.emit(&Event::CampaignFinished {
            kind: "serve".to_string(),
            key: format!("{}:{}", spec.kind.as_str(), spec.name),
            done: u64::from(verdict == "pass"),
            failed: u64::from(exit_code != 0),
            wall_seconds,
        });
        muted.store(true, Ordering::SeqCst);
    }
    let outcome = JobOutcome {
        id,
        verdict: verdict.clone(),
        exit_code,
        wall_seconds,
        attempts,
        detail,
        report,
    };
    // Record the terminal state *before* notifying the client: a client
    // reacting instantly to the job-finished line (a stats query, a
    // status poll) must already see the job finished, counted, and out
    // of the inflight drain count.
    state.lock_jobs().insert(
        id,
        JobState::Finished {
            outcome: Box::new(outcome.clone()),
        },
    );
    state.finished.fetch_add(1, Ordering::SeqCst);
    release_inflight(state);
    sender.send_json(&outcome.to_json());
    conn_pending.fetch_sub(1, Ordering::SeqCst);
    if let Some(path) = &state.options.ledger {
        let mut entry = LedgerEntry::new("serve", &format!("{}:{}", spec.kind.as_str(), spec.name));
        entry.engine = spec.engine.to_string();
        entry.wall_seconds = wall_seconds;
        entry.passed = u64::from(verdict == "pass");
        entry.failed = u64::from(exit_code != 0);
        if let Some(fraction) = outcome.report.get("detected_fraction").and_then(Json::as_f64) {
            entry.detected_fraction = Some(fraction);
        }
        entry
            .counters
            .push(("exit_code".to_string(), f64::from(exit_code)));
        entry.counters.push(("attempts".to_string(), attempts as f64));
        let _guard = state.ledger_lock.lock().unwrap_or_else(|p| p.into_inner());
        let _ = ledger::append(path, &entry);
    }
}

/// Runs one job on a dedicated thread behind the suite runner's two
/// shields: `catch_unwind` (panic → `crash`/3) and a wall-clock
/// watchdog (hang → `timeout`/4, thread abandoned).
fn execute_with_watchdog(
    state: &Arc<ServerState>,
    spec: &JobSpec,
    sink: &EventSink,
) -> (String, i32, String, Json) {
    let wall_ms = spec.wall_ms.unwrap_or(state.options.default_wall_ms);
    let (tx, rx) = std::sync::mpsc::channel();
    let job_state = Arc::clone(state);
    let job_spec = spec.clone();
    let job_sink = sink.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("serve-job-{}", job_spec.name))
        .spawn(move || {
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                execute_job(&job_state, &job_spec, &job_sink)
            }));
            let _ = tx.send(outcome);
        });
    if spawned.is_err() {
        return (
            "error".to_string(),
            2,
            "could not spawn job thread".to_string(),
            Json::Null,
        );
    }
    match rx.recv_timeout(Duration::from_millis(wall_ms)) {
        Ok(Ok(result)) => result,
        Ok(Err(payload)) => (
            "crash".to_string(),
            3,
            crate::faults::panic_message(&*payload),
            Json::Null,
        ),
        Err(RecvTimeoutError::Timeout) => (
            "timeout".to_string(),
            4,
            format!("wall clock exceeded {wall_ms} ms"),
            Json::Null,
        ),
        Err(RecvTimeoutError::Disconnected) => (
            "crash".to_string(),
            3,
            "job thread died without reporting".to_string(),
            Json::Null,
        ),
    }
}

fn execute_job(state: &ServerState, spec: &JobSpec, sink: &EventSink) -> (String, i32, String, Json) {
    let mut options = FlowOptions::default();
    if let Some(width) = spec.width {
        options.compile.width = width;
    }
    if let Some(partitions) = spec.partitions {
        options.compile.partitions = partitions;
    }
    if let Some(policy) = spec.policy {
        options.compile.policy = policy;
    }
    options.compile.optimize = spec.optimize;
    options.engine = spec.engine;
    if let Some(ticks) = spec.max_ticks {
        options.max_ticks = ticks;
    }
    options.planted_panic = spec.planted_panic;
    match spec.kind {
        JobKind::Test => {
            options.events = sink.clone();
            let result = if spec.no_cache {
                // Cold path: full pipeline, nothing shared. Benchmarks
                // use this as the compile-every-time baseline.
                let mut flow = TestFlow::new(&spec.name, &spec.source).with_options(options);
                for (mem, stimulus) in &spec.stimuli {
                    flow = flow.stimulus(mem, stimulus.clone());
                }
                flow.run()
            } else {
                state
                    .cache
                    .get_or_compile(&spec.name, &spec.source, &options.compile)
                    .and_then(|prepared| prepared.run(&spec.stimuli, &options))
            };
            classify_test(result)
        }
        JobKind::Faults => {
            let mut case_options = options.clone();
            case_options.events = EventSink::disabled();
            let case = TestCase {
                name: spec.name.clone(),
                source: spec.source.clone(),
                stimuli: spec.stimuli.clone(),
                options: case_options,
            };
            let campaign = CampaignOptions {
                seed: spec.seed,
                sites: spec.sites,
                engine: spec.engine,
                max_ticks: spec.max_ticks,
                events: sink.clone(),
            };
            let result = if spec.shards > 1 {
                crate::faults::run_campaign_sharded(
                    &case,
                    &campaign,
                    &crate::faults::ShardedCampaignOptions {
                        shards: spec.shards,
                        ..Default::default()
                    },
                )
                .map(|outcome| outcome.report)
            } else {
                run_campaign(&case, &campaign)
            };
            match result {
                Ok(report) => {
                    let crashed = report.count(InjectionOutcome::Crashed);
                    let detail = format!(
                        "{} injections over {} sites, {:.1}% detected",
                        report.injections.len(),
                        report.site_pool,
                        100.0 * report.detected_fraction()
                    );
                    if crashed > 0 {
                        (
                            "crash".to_string(),
                            3,
                            format!("{crashed} injections crashed the harness; {detail}"),
                            campaign_json(&report),
                        )
                    } else {
                        ("pass".to_string(), 0, detail, campaign_json(&report))
                    }
                }
                Err(FlowError::Timeout { config, max_ticks }) => (
                    "timeout".to_string(),
                    4,
                    format!("configuration '{config}' exceeded {max_ticks} ticks"),
                    Json::Null,
                ),
                Err(e) => ("error".to_string(), 2, e.to_string(), Json::Null),
            }
        }
    }
}

fn classify_test(result: Result<TestReport, FlowError>) -> (String, i32, String, Json) {
    match result {
        Ok(report) => {
            if report.passed {
                ("pass".to_string(), 0, String::new(), test_report_json(&report))
            } else {
                let detail = report
                    .failure
                    .clone()
                    .unwrap_or_else(|| format!("{} memory mismatches", report.mismatches.len()));
                ("fail".to_string(), 1, detail, test_report_json(&report))
            }
        }
        Err(FlowError::Timeout { config, max_ticks }) => (
            "timeout".to_string(),
            4,
            format!("configuration '{config}' exceeded {max_ticks} ticks"),
            Json::Null,
        ),
        Err(e) => ("error".to_string(), 2, e.to_string(), Json::Null),
    }
}

fn test_report_json(report: &TestReport) -> Json {
    let configs: Vec<Json> = report
        .runs
        .iter()
        .map(|run| {
            Json::obj([
                ("name", Json::from(run.name.as_str())),
                ("cycles", Json::from(run.cycles)),
            ])
        })
        .collect();
    Json::obj([
        ("design", Json::from(report.design.as_str())),
        ("passed", Json::from(report.passed)),
        ("mismatches", Json::from(report.mismatches.len())),
        ("fault_skips", Json::from(report.fault_skips.len())),
        ("configs", Json::Arr(configs)),
    ])
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Socket trouble.
    Io(io::Error),
    /// The connection to the daemon was lost (EOF or a mid-read error).
    /// Distinct from [`ClientError::Io`] so resilient callers know a
    /// reconnect-and-resume is worth trying.
    Disconnected(String),
    /// The server sent a line longer than the client's frame cap.
    FrameTooLong {
        /// The cap that was exceeded, in bytes.
        limit: usize,
    },
    /// The server said something the protocol does not allow.
    Protocol(String),
    /// The server answered with a typed `error` line.
    Rejected {
        /// Machine-readable code (`bad-request`, `draining`,
        /// `overloaded`, `frame-too-long`, `deadline`, `unknown-job`).
        code: String,
        /// Human-readable message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "serve i/o error: {e}"),
            ClientError::Disconnected(m) => write!(f, "serve connection lost: {m}"),
            ClientError::FrameTooLong { limit } => {
                write!(f, "server line exceeds the {limit}-byte frame cap")
            }
            ClientError::Protocol(m) => write!(f, "serve protocol error: {m}"),
            ClientError::Rejected { code, message } => {
                write!(f, "server rejected request ({code}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Default client-side frame cap, matching the daemon's default.
const CLIENT_MAX_LINE: usize = 8 * 1024 * 1024;

/// Reconnect attempts [`Client::wait_or_resubmit`] makes before giving
/// up on a lost daemon.
const RECONNECT_ATTEMPTS: u32 = 10;

/// One connection to a serve daemon. Submissions, status polls, and
/// event streams all share the connection; the client demultiplexes
/// per line and buffers `job-finished` responses that arrive while it
/// waits for something else.
pub struct Client {
    addr: String,
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    finished: HashMap<u64, JobOutcome>,
    event_writer: Option<Box<dyn Write>>,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7411`).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            addr: addr.to_string(),
            reader,
            writer,
            finished: HashMap::new(),
            event_writer: None,
        })
    }

    /// Copies every `fpgatest-events-v1` line the server interleaves on
    /// this connection to `writer`, verbatim, as it arrives.
    pub fn stream_events_to(&mut self, writer: Box<dyn Write>) {
        self.event_writer = Some(writer);
    }

    fn send(&mut self, json: &Json) -> Result<(), ClientError> {
        self.writer.write_all(json.emit().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Replaces the dead socket with a fresh connection to the same
    /// address, with bounded exponential backoff. Buffered finished
    /// outcomes survive; the event stream resumes on the new socket.
    ///
    /// # Errors
    ///
    /// The last connect failure once the attempts run out.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        let mut delay = Duration::from_millis(50);
        let mut last: Option<io::Error> = None;
        for _ in 0..RECONNECT_ATTEMPTS {
            match TcpStream::connect(&self.addr) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    self.reader = BufReader::new(stream.try_clone()?);
                    self.writer = stream;
                    return Ok(());
                }
                Err(e) => last = Some(e),
            }
            std::thread::sleep(delay);
            delay = (delay * 2).min(Duration::from_millis(1_000));
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::ConnectionRefused, "reconnect failed")
        })))
    }

    /// Kills the underlying socket without telling the daemon — the
    /// next read observes a lost connection. A chaos-test hook for
    /// exercising the [`reconnect`](Client::reconnect) /
    /// [`wait_or_resubmit`](Client::wait_or_resubmit) recovery paths;
    /// production code has no reason to call it.
    pub fn sever(&mut self) {
        let _ = self.writer.shutdown(std::net::Shutdown::Both);
    }

    /// Reads one newline-terminated line, refusing to buffer more than
    /// [`CLIENT_MAX_LINE`] bytes. Returns `None` on clean EOF.
    fn read_line_capped(&mut self) -> Result<Option<String>, ClientError> {
        let mut buf: Vec<u8> = Vec::new();
        loop {
            let available = self
                .reader
                .fill_buf()
                .map_err(|e| ClientError::Disconnected(e.to_string()))?;
            if available.is_empty() {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(ClientError::Disconnected(
                        "connection closed mid-line".to_string(),
                    ))
                };
            }
            match available.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    buf.extend_from_slice(&available[..pos]);
                    self.reader.consume(pos + 1);
                    if buf.len() > CLIENT_MAX_LINE {
                        return Err(ClientError::FrameTooLong {
                            limit: CLIENT_MAX_LINE,
                        });
                    }
                    return Ok(Some(String::from_utf8_lossy(&buf).into_owned()));
                }
                None => {
                    let n = available.len();
                    buf.extend_from_slice(available);
                    self.reader.consume(n);
                    if buf.len() > CLIENT_MAX_LINE {
                        return Err(ClientError::FrameTooLong {
                            limit: CLIENT_MAX_LINE,
                        });
                    }
                }
            }
        }
    }

    /// Reads the next serve-schema line, routing event lines to the
    /// event writer along the way.
    fn next_response(&mut self) -> Result<Json, ClientError> {
        loop {
            let Some(line) = self.read_line_capped()? else {
                return Err(ClientError::Disconnected(
                    "connection closed by server".to_string(),
                ));
            };
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let json = Json::parse(trimmed)
                .map_err(|e| ClientError::Protocol(format!("bad server line: {e}")))?;
            if json.get("schema").and_then(Json::as_str) == Some(EVENTS_SCHEMA) {
                if let Some(writer) = &mut self.event_writer {
                    let _ = writeln!(writer, "{trimmed}");
                    let _ = writer.flush();
                }
                continue;
            }
            return Ok(json);
        }
    }

    fn take_error(json: &Json) -> ClientError {
        ClientError::Rejected {
            code: json
                .get("code")
                .and_then(Json::as_str)
                .unwrap_or("unknown")
                .to_string(),
            message: json
                .get("message")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        }
    }

    fn buffer_finished(&mut self, json: &Json) -> Result<(), ClientError> {
        let outcome = JobOutcome::from_json(json).map_err(ClientError::Protocol)?;
        self.finished.insert(outcome.id, outcome);
        Ok(())
    }

    /// Reads responses until one of `wanted` arrives, buffering
    /// `job-finished` lines for other jobs and failing on `error`.
    fn response_of_type(&mut self, wanted: &str) -> Result<Json, ClientError> {
        loop {
            let json = self.next_response()?;
            match json.get("type").and_then(Json::as_str) {
                Some(kind) if kind == wanted => return Ok(json),
                Some("job-finished") => self.buffer_finished(&json)?,
                Some("error") => return Err(Self::take_error(&json)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response type {other:?} while waiting for {wanted}"
                    )))
                }
            }
        }
    }

    /// Submits a job; returns the server-assigned id.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with code `draining` when the server
    /// is shutting down.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ClientError> {
        self.send(&Json::obj([
            ("schema", Json::from(SERVE_SCHEMA)),
            ("type", Json::from("submit")),
            ("job", spec.to_json()),
        ]))?;
        let json = self.response_of_type("job-accepted")?;
        json.get("id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("job-accepted without id".to_string()))
    }

    /// Blocks until job `id` finishes, routing interleaved events.
    ///
    /// # Errors
    ///
    /// Protocol/i-o failures; never an error for a job that *ran* —
    /// failures are in the returned [`JobOutcome`].
    pub fn wait(&mut self, id: u64) -> Result<JobOutcome, ClientError> {
        loop {
            if let Some(outcome) = self.finished.remove(&id) {
                return Ok(outcome);
            }
            let json = self.next_response()?;
            match json.get("type").and_then(Json::as_str) {
                Some("job-finished") => self.buffer_finished(&json)?,
                Some("error") => return Err(Self::take_error(&json)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response type {other:?} while waiting for job {id}"
                    )))
                }
            }
        }
    }

    /// Convenience: submit then wait.
    ///
    /// # Errors
    ///
    /// See [`submit`](Client::submit) and [`wait`](Client::wait).
    pub fn run_job(&mut self, spec: &JobSpec) -> Result<JobOutcome, ClientError> {
        let id = self.submit(spec)?;
        self.wait(id)
    }

    /// Asks the server to replay job `id`'s terminal outcome. Returns
    /// `Ok(Some(outcome))` when finished, `Ok(None)` when the job is
    /// still queued/running.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with code `unknown-job` for an id this
    /// daemon never issued (e.g. it restarted and lost its state).
    pub fn result(&mut self, id: u64) -> Result<Option<JobOutcome>, ClientError> {
        if let Some(outcome) = self.finished.remove(&id) {
            return Ok(Some(outcome));
        }
        self.send(&Json::obj([
            ("schema", Json::from(SERVE_SCHEMA)),
            ("type", Json::from("result")),
            ("id", Json::from(id)),
        ]))?;
        loop {
            let json = self.next_response()?;
            match json.get("type").and_then(Json::as_str) {
                Some("job-finished") => {
                    let outcome = JobOutcome::from_json(&json).map_err(ClientError::Protocol)?;
                    if outcome.id == id {
                        return Ok(Some(outcome));
                    }
                    self.finished.insert(outcome.id, outcome);
                }
                Some("status") => return Ok(None),
                Some("error") => return Err(Self::take_error(&json)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected response type {other:?} while polling result of job {id}"
                    )))
                }
            }
        }
    }

    /// [`wait`](Client::wait), hardened against losing the daemon
    /// mid-stream: on disconnect it reconnects with backoff and resumes
    /// by id via the `result` request; if the daemon restarted and no
    /// longer knows the id (`unknown-job`), the job is resubmitted from
    /// `spec`. Interleaved events that were in flight when the
    /// connection died are lost — the terminal outcome is not.
    ///
    /// # Errors
    ///
    /// Non-recoverable failures only: typed rejections other than
    /// `unknown-job`, protocol violations, or running out of reconnect
    /// attempts.
    pub fn wait_or_resubmit(
        &mut self,
        id: u64,
        spec: &JobSpec,
    ) -> Result<JobOutcome, ClientError> {
        let mut id = id;
        'wait: loop {
            match self.wait(id) {
                Ok(outcome) => return Ok(outcome),
                Err(ClientError::Disconnected(_)) => {}
                Err(other) => return Err(other),
            }
            self.reconnect()?;
            loop {
                match self.result(id) {
                    Ok(Some(outcome)) => return Ok(outcome),
                    // Still queued/running. The push notification went
                    // to the connection that died, so a blocking wait
                    // on this one would hang forever: poll instead.
                    Ok(None) => std::thread::sleep(Duration::from_millis(200)),
                    Err(ClientError::Rejected { code, .. }) if code == "unknown-job" => {
                        // The daemon restarted and lost the job. The
                        // spec is idempotent (same design, same seed):
                        // resubmit and wait on the fresh id.
                        id = self.submit(spec)?;
                        continue 'wait;
                    }
                    Err(ClientError::Disconnected(_)) => self.reconnect()?,
                    Err(other) => return Err(other),
                }
            }
        }
    }

    /// Fetches the server's `stats` object (job counters, queue depth,
    /// cache hit/miss/eviction counts).
    ///
    /// # Errors
    ///
    /// Protocol/i-o failures.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.send(&Json::obj([
            ("schema", Json::from(SERVE_SCHEMA)),
            ("type", Json::from("stats")),
        ]))?;
        self.response_of_type("stats")
    }

    /// Polls one job's lifecycle state.
    ///
    /// # Errors
    ///
    /// [`ClientError::Rejected`] with code `unknown-job` for an id the
    /// server never issued.
    pub fn status(&mut self, id: u64) -> Result<Json, ClientError> {
        self.send(&Json::obj([
            ("schema", Json::from(SERVE_SCHEMA)),
            ("type", Json::from("status")),
            ("id", Json::from(id)),
        ]))?;
        self.response_of_type("status")
    }

    /// Cancels a queued job (running/finished jobs are unaffected);
    /// returns the job's post-request status.
    ///
    /// # Errors
    ///
    /// See [`status`](Client::status).
    pub fn cancel(&mut self, id: u64) -> Result<Json, ClientError> {
        self.send(&Json::obj([
            ("schema", Json::from(SERVE_SCHEMA)),
            ("type", Json::from("cancel")),
            ("id", Json::from(id)),
        ]))?;
        self.response_of_type("status")
    }

    /// Asks the server to drain and stop; blocks until the ack.
    ///
    /// # Errors
    ///
    /// Protocol/i-o failures.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.send(&Json::obj([
            ("schema", Json::from(SERVE_SCHEMA)),
            ("type", Json::from("shutdown")),
        ]))?;
        self.response_of_type("shutdown-ack")
    }

    /// The load-shedding shutdown: queued jobs are cancelled (each
    /// still reported with a terminal `cancelled` outcome), only
    /// in-flight jobs are awaited. Blocks until the ack.
    ///
    /// # Errors
    ///
    /// Protocol/i-o failures.
    pub fn shutdown_shed(&mut self) -> Result<Json, ClientError> {
        self.send(&Json::obj([
            ("schema", Json::from(SERVE_SCHEMA)),
            ("type", Json::from("shutdown")),
            ("shed", Json::from(true)),
        ]))?;
        self.response_of_type("shutdown-ack")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(spec: &JobSpec) -> JobSpec {
        let line = spec.to_json().emit();
        let json = Json::parse(&line).expect("emitted job parses");
        JobSpec::from_json(&json).expect("parsed job converts")
    }

    #[test]
    fn job_spec_round_trips_through_json() {
        let mut spec = JobSpec::faults("fdct", "mem a[4]; void main() { a[0] = 1; }", 7, 25)
            .stimulus("a", Stimulus::from_values([1, 2, 3, 4]));
        spec.width = Some(24);
        spec.partitions = Some(2);
        spec.policy = Some(SchedulePolicy::OneOpPerState);
        spec.optimize = true;
        spec.engine = "level".parse().expect("engine parses");
        spec.max_ticks = Some(9000);
        spec.wall_ms = Some(1234);
        spec.events = true;
        spec.planted_panic = true;
        spec.no_cache = true;
        let back = round_trip(&spec);
        assert_eq!(back.kind, JobKind::Faults);
        assert_eq!(back.name, spec.name);
        assert_eq!(back.source, spec.source);
        assert_eq!(back.stimuli.len(), 1);
        assert_eq!(back.stimuli[0].0, "a");
        assert_eq!(back.stimuli[0].1.words, vec![(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(back.width, Some(24));
        assert_eq!(back.partitions, Some(2));
        assert_eq!(back.policy, Some(SchedulePolicy::OneOpPerState));
        assert!(back.optimize);
        assert_eq!(back.engine.to_string(), "level");
        assert_eq!(back.max_ticks, Some(9000));
        assert_eq!(back.wall_ms, Some(1234));
        assert!(back.events);
        assert_eq!(back.seed, 7);
        assert_eq!(back.sites, 25);
        assert!(back.planted_panic);
        assert!(back.no_cache);
    }

    #[test]
    fn minimal_job_gets_defaults() {
        let json = Json::parse(r#"{"kind":"test","name":"n","source":"s"}"#).expect("parses");
        let spec = JobSpec::from_json(&json).expect("minimal job converts");
        assert_eq!(spec.kind, JobKind::Test);
        assert!(spec.stimuli.is_empty());
        assert_eq!(spec.width, None);
        assert_eq!(spec.engine, Engine::default());
        assert!(!spec.events);
        assert!(!spec.no_cache);
    }

    #[test]
    fn bad_jobs_are_rejected_with_reasons() {
        for (text, needle) in [
            (r#"{"name":"n","source":"s"}"#, "kind"),
            (r#"{"kind":"bogus","name":"n","source":"s"}"#, "bogus"),
            (r#"{"kind":"test","source":"s"}"#, "name"),
            (r#"{"kind":"test","name":"n"}"#, "source"),
            (
                r#"{"kind":"test","name":"n","source":"s","policy":"greedy"}"#,
                "greedy",
            ),
        ] {
            let json = Json::parse(text).expect("test input parses");
            let err = JobSpec::from_json(&json).expect_err("must reject");
            assert!(err.contains(needle), "error {err:?} should mention {needle}");
        }
    }

    #[test]
    fn requests_parse_and_reject() {
        let ok = Json::parse(r#"{"type":"stats"}"#).expect("parses");
        assert!(matches!(parse_request(&ok), Ok(Request::Stats)));
        let ok = Json::parse(r#"{"type":"cancel","id":3}"#).expect("parses");
        assert!(matches!(parse_request(&ok), Ok(Request::Cancel(3))));
        let bad = Json::parse(r#"{"type":"noop"}"#).expect("parses");
        assert!(parse_request(&bad).is_err());
        let bad = Json::parse(r#"{"type":"submit"}"#).expect("parses");
        assert!(parse_request(&bad).is_err());
        let bad = Json::parse(r#"{"type":"status"}"#).expect("parses");
        assert!(parse_request(&bad).is_err());
    }

    #[test]
    fn outcome_round_trips() {
        let outcome = JobOutcome {
            id: 12,
            verdict: "timeout".to_string(),
            exit_code: 4,
            wall_seconds: 1.5,
            attempts: 3,
            detail: "wall clock exceeded 10 ms".to_string(),
            report: Json::Null,
        };
        let json = Json::parse(&outcome.to_json().emit()).expect("parses");
        assert_eq!(
            json.get("schema").and_then(Json::as_str),
            Some(SERVE_SCHEMA)
        );
        let back = JobOutcome::from_json(&json).expect("converts");
        assert_eq!(back.id, 12);
        assert_eq!(back.verdict, "timeout");
        assert_eq!(back.exit_code, 4);
        assert_eq!(back.attempts, 3);
        assert_eq!(back.detail, outcome.detail);
        // Outcomes from older daemons (no attempts field) default to 1.
        let legacy = Json::parse(r#"{"type":"job-finished","id":5,"verdict":"pass","exit_code":0}"#)
            .expect("parses");
        assert_eq!(JobOutcome::from_json(&legacy).expect("converts").attempts, 1);
    }

    #[test]
    fn result_and_shed_requests_parse() {
        let ok = Json::parse(r#"{"type":"result","id":9}"#).expect("parses");
        assert!(matches!(parse_request(&ok), Ok(Request::Result(9))));
        let plain = Json::parse(r#"{"type":"shutdown"}"#).expect("parses");
        assert!(matches!(
            parse_request(&plain),
            Ok(Request::Shutdown { shed: false })
        ));
        let shed = Json::parse(r#"{"type":"shutdown","shed":true}"#).expect("parses");
        assert!(matches!(
            parse_request(&shed),
            Ok(Request::Shutdown { shed: true })
        ));
        let bad = Json::parse(r#"{"type":"result"}"#).expect("parses");
        assert!(parse_request(&bad).is_err());
    }

    #[test]
    fn backoff_grows_exponentially_and_stays_bounded() {
        // Deterministic: same (base, attempt, id) → same delay.
        assert_eq!(backoff_delay(50, 1, 7), backoff_delay(50, 1, 7));
        for attempt in 1..=12u64 {
            for id in [1u64, 2, 99] {
                let delay = backoff_delay(50, attempt, id).as_millis() as u64;
                let exp = 50u64.saturating_mul(1 << (attempt - 1).min(16)).min(BACKOFF_CAP_MS);
                assert!(delay >= exp, "attempt {attempt}: {delay} < floor {exp}");
                assert!(
                    delay <= exp + exp / 2,
                    "attempt {attempt}: {delay} > {exp} + 50% jitter"
                );
                assert!(delay <= BACKOFF_CAP_MS * 3 / 2, "cap holds");
            }
        }
        // Jitter decorrelates different jobs at the same attempt.
        let spread: std::collections::HashSet<u128> = (0..16)
            .map(|id| backoff_delay(50, 4, id).as_millis())
            .collect();
        assert!(spread.len() > 1, "jitter varies by job id");
    }
}
