//! The test flow: the orchestration the paper's ANT build performs.
//!
//! One [`TestFlow::run`] executes the entire Figure 1 pipeline:
//!
//! 1. compile the source program (the compiler-under-test),
//! 2. emit the XML dialects (`datapath.xml`, `fsm.xml`, `rtg.xml`),
//! 3. translate them with the stock stylesheets (`.hds`, behavioral
//!    source, `dot`),
//! 4. execute the golden software reference over the stimulus files,
//! 5. elaborate and simulate every configuration in RTG order, carrying
//!    SRAM contents across reconfigurations,
//! 6. compare final memory contents and produce a [`TestReport`].

use crate::elaborate::{elaborate_config, elaborate_config_instrumented, ElaborateConfigError};
use crate::events::{Event, EventSink};
use crate::faults::FaultSpec;
use crate::memcmp::{diff_images, render_mismatches, Mismatch};
use crate::metrics::{ConfigMetrics, DesignMetrics};
use crate::stimulus::{MemImage, Stimulus};
use crate::telemetry::Recorder;
use eventsim::batchsim::{BatchSim, LaneOutcome, LANES};
use eventsim::cyclesim::{CycleOutcome, CycleSim, CycleSimError, CycleSummary};
use eventsim::levelsim::LevelSim;
use eventsim::ops::FsmTable;
use eventsim::{KernelStats, MemHandle, RunOutcome, SimError, SimTime};
use nenya::datapath::FU_KINDS;
use nenya::schedule::SchedulePolicy;
use nenya::{compile_program, CompileError, CompileOptions, Design};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Which simulation engine executes the elaborated configurations.
///
/// All four engines interpret the same netlist + FSM-table vocabulary and
/// must produce word-identical final memories (`fpgafuzz` enforces this on
/// every generated program). See DESIGN.md's engine-selection matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The delta-cycle event kernel — full observability (probes, VCD,
    /// coverage) and the paper's reference engine.
    #[default]
    Event,
    /// The naive sweep-until-fixpoint cycle engine — the slow comparator.
    Cycle,
    /// The levelized compiled-schedule engine — fastest on dense
    /// datapaths; no probe/trace/coverage support.
    Level,
    /// The bytecode-compiled batch engine — the level schedule flattened
    /// into a linear opcode buffer and executed over 64 stimulus lanes
    /// per walk; fastest when many independent vectors or fault sites
    /// share one design. No probe/trace/coverage support.
    Batch,
}

impl Engine {
    /// All engines, in documentation order.
    pub const ALL: [Engine; 4] = [Engine::Event, Engine::Cycle, Engine::Level, Engine::Batch];
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Engine::Event => "event",
            Engine::Cycle => "cycle",
            Engine::Level => "level",
            Engine::Batch => "batch",
        })
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "event" => Ok(Engine::Event),
            "cycle" => Ok(Engine::Cycle),
            "level" => Ok(Engine::Level),
            "batch" => Ok(Engine::Batch),
            other => Err(format!(
                "unknown engine '{other}' (expected event, cycle, level, or batch)"
            )),
        }
    }
}

/// Options controlling a test-flow run.
#[derive(Debug, Clone)]
pub struct FlowOptions {
    /// Compiler options (width, scheduling policy, partitions).
    pub compile: CompileOptions,
    /// Simulation engine (see [`Engine`]).
    pub engine: Engine,
    /// Simulation watchdog in kernel ticks per configuration.
    pub max_ticks: u64,
    /// Step budget for the golden reference execution.
    pub golden_step_limit: u64,
    /// Record a VCD of clock/done/conditions per configuration.
    pub trace: bool,
    /// Keep textual artifacts (XML, hds, behavioral source, dot) in the
    /// report.
    pub keep_artifacts: bool,
    /// Datapath signals to record ("access to values on certain
    /// connections"): every change is captured per configuration and
    /// returned in [`ConfigRun::probes`].
    pub probes: Vec<String>,
    /// Collect FSM state/transition and operator-activation coverage per
    /// configuration (see [`ConfigRun::coverage`]).
    pub coverage: bool,
    /// Hardware faults to inject into the simulated design (never the
    /// golden reference). A fault naming a signal or memory absent from
    /// every executed configuration is a [`FlowError::Fault`]; a fault
    /// class the selected engine cannot express is recorded in
    /// [`TestReport::fault_skips`] instead of being silently dropped.
    pub faults: Vec<FaultSpec>,
    /// Wall-clock watchdog in milliseconds, enforced by the suite runner
    /// around the whole case (the flow itself only counts ticks).
    pub wall_timeout_ms: Option<u64>,
    /// Live event stream (`fpgatest-events-v1`): stage span start/end
    /// events are emitted here as they happen. Disabled by default —
    /// see [`crate::events::EventSink`].
    pub events: EventSink,
    /// Collect an engine profile per configuration into
    /// [`ConfigRun::profile`]: per-component-class evaluation timing on
    /// the event kernel, per-rank settle timing and dirty-bitset hit
    /// rates on the level engine, per-phase timing on the cycle engine.
    /// Profiling only observes — kernel counters, cycle counts, and
    /// verdicts are bit-identical with it on or off — and costs nothing
    /// when off.
    pub profile: bool,
    /// Test hook: panic at the start of the flow, exercising the suite
    /// runner's crash isolation.
    #[doc(hidden)]
    pub planted_panic: bool,
}

/// How many entries [`ConfigRun::hot_components`] keeps.
const HOT_COMPONENT_LIMIT: usize = 10;

/// Kernel ticks per clock cycle, matching the event path's elaborated
/// clock generator (`ConfigSim::clock_period`); the compiled engines use it
/// to convert the tick watchdog into a cycle budget and back.
const COMPILED_CLOCK_PERIOD: u64 = 10;

/// Uniform front for the compiled (non-event) engines.
enum CompiledSim {
    Cycle(CycleSim),
    Level(LevelSim),
    /// The 64-lane batch engine restricted to lane 0, so the
    /// single-stimulus flow path reads one lane and stays report-
    /// compatible with the sequential engines. The full lane fan-out is
    /// exposed by [`PreparedDesign::run_batch`].
    Batch(BatchSim),
}

impl CompiledSim {
    fn build(engine: Engine, netlist: &eventsim::netlist::Netlist) -> Result<Self, CycleSimError> {
        match engine {
            Engine::Cycle => CycleSim::from_netlist(netlist).map(CompiledSim::Cycle),
            Engine::Level => netlist.compile_levelized().map(CompiledSim::Level),
            Engine::Batch => BatchSim::from_netlist(netlist).map(|mut s| {
                s.set_active(1);
                CompiledSim::Batch(s)
            }),
            Engine::Event => unreachable!("event engine does not use CompiledSim"),
        }
    }

    fn add_control_unit(
        &mut self,
        name: &str,
        conditions: &[&str],
        outputs: &[(&str, u32)],
        table: FsmTable,
    ) -> Result<(), CycleSimError> {
        match self {
            CompiledSim::Cycle(s) => s.add_control_unit(name, conditions, outputs, table),
            CompiledSim::Level(s) => s.add_control_unit(name, conditions, outputs, table),
            CompiledSim::Batch(s) => s.add_control_unit(name, conditions, outputs, table),
        }
    }

    /// The `MemHandle` view shared by the sequential compiled engines;
    /// `None` for the lane-struct-of-arrays batch engine, whose memory
    /// access goes through the lane-aware methods below.
    fn handle_of(&self, name: &str) -> Option<&MemHandle> {
        match self {
            CompiledSim::Cycle(s) => s.mem(name),
            CompiledSim::Level(s) => s.mem(name),
            CompiledSim::Batch(_) => None,
        }
    }

    fn mem_size(&self, name: &str) -> Option<usize> {
        match self {
            CompiledSim::Batch(s) => s.mem_size(name),
            _ => self.handle_of(name).map(MemHandle::size),
        }
    }

    /// Preloads defined words of `image` into the named memory (lane 0
    /// on the batch engine).
    fn load_mem(&mut self, name: &str, image: &[Option<i64>]) -> bool {
        if let CompiledSim::Batch(s) = self {
            return s.load_mem(name, 0, image);
        }
        let Some(handle) = self.handle_of(name) else {
            return false;
        };
        for (addr, word) in image.iter().enumerate() {
            if let Some(v) = word {
                handle.store(addr, *v);
            }
        }
        true
    }

    /// Final image of the named memory (lane 0 on the batch engine).
    fn snapshot_mem(&self, name: &str) -> Option<Vec<Option<i64>>> {
        match self {
            CompiledSim::Batch(s) => s.snapshot_mem(name, 0),
            _ => self.handle_of(name).map(MemHandle::snapshot),
        }
    }

    fn run(&mut self, max_cycles: u64) -> Result<CycleSummary, CycleSimError> {
        match self {
            CompiledSim::Cycle(s) => s.run(max_cycles),
            CompiledSim::Level(s) => s.run(max_cycles),
            CompiledSim::Batch(s) => s.run(max_cycles),
        }
    }

    fn cycles(&self) -> u64 {
        match self {
            CompiledSim::Cycle(s) => s.cycles(),
            CompiledSim::Level(s) => s.cycles(),
            CompiledSim::Batch(s) => s.cycles(),
        }
    }

    fn comb_evals(&self) -> u64 {
        match self {
            CompiledSim::Cycle(s) => s.comb_evals(),
            CompiledSim::Level(s) => s.comb_evals(),
            CompiledSim::Batch(s) => s.comb_evals(),
        }
    }

    fn inject_stuck(&mut self, signal: &str, bit: u32, value: bool) -> Result<bool, CycleSimError> {
        match self {
            CompiledSim::Cycle(s) => s.inject_stuck_at(signal, bit, value),
            CompiledSim::Level(s) => s.inject_stuck_at(signal, bit, value),
            CompiledSim::Batch(s) => s.inject_stuck_at(signal, bit, value),
        }
    }

    fn inject_flip(&mut self, signal: &str, bit: u32, cycle: u64) -> Result<bool, CycleSimError> {
        match self {
            CompiledSim::Cycle(s) => s.inject_transient_flip(signal, bit, cycle),
            CompiledSim::Level(s) => s.inject_transient_flip(signal, bit, cycle),
            CompiledSim::Batch(s) => s.inject_transient_flip(signal, bit, cycle),
        }
    }

    fn enable_profile(&mut self) {
        match self {
            CompiledSim::Cycle(s) => s.enable_profile(),
            CompiledSim::Level(s) => s.enable_profile(),
            CompiledSim::Batch(s) => s.enable_profile(),
        }
    }

    /// The engine profile accumulated since construction, translated
    /// into the flow's [`ConfigProfile`] shape.
    fn profile(&self) -> ConfigProfile {
        match self {
            CompiledSim::Cycle(s) => {
                let phases = s
                    .profile()
                    .map(|p| {
                        vec![
                            PhaseProfile {
                                phase: "settle".to_string(),
                                nanos: p.settle_nanos,
                            },
                            PhaseProfile {
                                phase: "commit".to_string(),
                                nanos: p.commit_nanos,
                            },
                        ]
                    })
                    .unwrap_or_default();
                ConfigProfile {
                    phases,
                    ..ConfigProfile::default()
                }
            }
            CompiledSim::Level(s) => {
                let ranks = s
                    .profile()
                    .map(|p| {
                        p.ranks
                            .iter()
                            .enumerate()
                            .map(|(rank, row)| RankProfile {
                                rank,
                                size: p.rank_sizes.get(rank).copied().unwrap_or(0),
                                evals: row.evals,
                                changes: row.changes,
                                nanos: row.nanos,
                                hit_rate: p.hit_rate(rank),
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                ConfigProfile {
                    ranks,
                    ..ConfigProfile::default()
                }
            }
            // The batch engine has no per-rank or per-phase profile:
            // the bytecode walk is one undifferentiated loop.
            CompiledSim::Batch(_) => ConfigProfile::default(),
        }
    }
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            compile: CompileOptions::default(),
            engine: Engine::default(),
            max_ticks: 2_000_000_000,
            golden_step_limit: 200_000_000,
            trace: false,
            keep_artifacts: true,
            probes: Vec::new(),
            coverage: false,
            faults: Vec::new(),
            wall_timeout_ms: None,
            events: EventSink::disabled(),
            profile: false,
            planted_panic: false,
        }
    }
}

/// Execution coverage of one configuration: which control-FSM states and
/// transitions ran, and how often each functional-unit kind reacted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigCoverage {
    /// Names of FSM states entered at least once, in table order.
    pub visited_states: Vec<String>,
    /// Total number of FSM states in the control table.
    pub state_total: usize,
    /// Number of distinct `(from, to)` transitions taken.
    pub transitions_taken: usize,
    /// Total number of transitions declared in the control table.
    pub transition_total: usize,
    /// Reactive-evaluation counts summed per functional-unit kind
    /// (`add`, `mul`, …). Kinds instantiated in the datapath but never
    /// activated appear with count 0.
    pub operator_activations: BTreeMap<String, u64>,
}

/// Textual artifacts of one configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigArtifacts {
    /// Configuration name.
    pub name: String,
    /// `datapath.xml`.
    pub datapath_xml: String,
    /// `fsm.xml`.
    pub fsm_xml: String,
    /// The `.hds` netlist produced by the stylesheet.
    pub hds: String,
    /// The behavioral control-unit source (Java-flavoured).
    pub behavior_src: String,
    /// Graphviz dot of the datapath.
    pub datapath_dot: String,
    /// Graphviz dot of the FSM.
    pub fsm_dot: String,
}

/// Textual artifacts of a whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifacts {
    /// `rtg.xml`.
    pub rtg_xml: String,
    /// Graphviz dot of the RTG.
    pub rtg_dot: String,
    /// The reconfiguration-controller source.
    pub controller_src: String,
    /// Per-configuration artifacts in RTG order.
    pub configs: Vec<ConfigArtifacts>,
}

/// Per-component-class evaluation timing on the event kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassProfile {
    /// Component class (functional-unit kind like `add`/`mul`, or the
    /// component name with its instance digits stripped: `reg`, `sram`,
    /// `clock`, ...).
    pub class: String,
    /// Timed reactive evaluations of this class.
    pub evals: u64,
    /// Monotonic nanoseconds spent evaluating this class.
    pub nanos: u64,
}

/// Per-rank settle timing on the level engine.
#[derive(Debug, Clone, PartialEq)]
pub struct RankProfile {
    /// Levelization rank.
    pub rank: usize,
    /// Schedule positions in this rank.
    pub size: u64,
    /// Dirty positions actually evaluated across all settles.
    pub evals: u64,
    /// Evaluations whose output changed.
    pub changes: u64,
    /// Monotonic nanoseconds spent evaluating this rank.
    pub nanos: u64,
    /// Dirty-bitset hit rate: evaluated fraction of `size × settles`
    /// (1.0 = the bitset saved nothing).
    pub hit_rate: f64,
}

/// Per-phase timing on the cycle engine.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseProfile {
    /// Phase name (`settle`, `commit`).
    pub phase: String,
    /// Monotonic nanoseconds spent in the phase.
    pub nanos: u64,
}

/// Engine profile of one configuration, collected under
/// [`FlowOptions::profile`]. Exactly one section is populated,
/// depending on the engine that ran: `classes` (event kernel), `ranks`
/// (level engine), or `phases` (cycle engine).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConfigProfile {
    /// Event kernel: per-component-class evaluation timing, descending
    /// by nanoseconds.
    pub classes: Vec<ClassProfile>,
    /// Level engine: per-rank settle timing and dirty-bitset hit rates,
    /// in rank order.
    pub ranks: Vec<RankProfile>,
    /// Cycle engine: per-phase timing.
    pub phases: Vec<PhaseProfile>,
}

/// Result of simulating one configuration.
#[derive(Debug, Clone)]
pub struct ConfigRun {
    /// Configuration name.
    pub name: String,
    /// Kernel summary.
    pub summary: eventsim::RunSummary,
    /// Cumulative kernel counters of this configuration's simulator.
    pub kernel: KernelStats,
    /// The most-activated components, `(name, reactive evaluations)`
    /// pairs in descending order — the "hot operator" histogram.
    pub hot_components: Vec<(String, u64)>,
    /// Clock cycles executed.
    pub cycles: u64,
    /// VCD text when tracing was requested.
    pub vcd: Option<String>,
    /// Recorded `(tick, value)` histories of the probed signals
    /// (`None` = `X`).
    pub probes: BTreeMap<String, Vec<(u64, Option<i64>)>>,
    /// Execution coverage, when [`FlowOptions::coverage`] was set.
    pub coverage: Option<ConfigCoverage>,
    /// Engine profile, when [`FlowOptions::profile`] was set.
    pub profile: Option<ConfigProfile>,
}

/// The outcome of a full test-flow run.
#[derive(Debug, Clone)]
pub struct TestReport {
    /// Design name.
    pub design: String,
    /// Whether simulation completed and every memory word matched.
    pub passed: bool,
    /// A design-level failure (assertion, X condition, bad write) that
    /// aborted simulation, if any.
    pub failure: Option<String>,
    /// Word-level disagreements between golden and simulated memories.
    pub mismatches: Vec<Mismatch>,
    /// Golden execution statistics.
    pub golden: nenya::interp::ExecStats,
    /// Per-configuration simulation results, in RTG order.
    pub runs: Vec<ConfigRun>,
    /// Table I metrics.
    pub metrics: DesignMetrics,
    /// Textual artifacts (when requested).
    pub artifacts: Option<Artifacts>,
    /// Final simulated memory contents.
    pub sim_mems: BTreeMap<String, MemImage>,
    /// Final golden memory contents.
    pub golden_mems: BTreeMap<String, MemImage>,
    /// Requested faults the selected engine could not express, each with
    /// a reason. Non-empty skips mean the verdict does *not* cover those
    /// faults — campaign classification treats them as skipped, never as
    /// a silent pass.
    pub fault_skips: Vec<String>,
}

impl TestReport {
    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "design '{}': {}\n",
            self.design,
            if self.passed { "PASS" } else { "FAIL" }
        ));
        if let Some(failure) = &self.failure {
            out.push_str(&format!("  simulation failure: {failure}\n"));
        }
        for skip in &self.fault_skips {
            out.push_str(&format!("  fault skipped: {skip}\n"));
        }
        if !self.mismatches.is_empty() {
            out.push_str(&format!("  {} memory mismatches:\n", self.mismatches.len()));
            out.push_str(&render_mismatches(&self.mismatches, 10));
        }
        for run in &self.runs {
            out.push_str(&format!(
                "  config '{}': {} cycles, {} events, {:.4}s\n",
                run.name, run.cycles, run.summary.events, run.summary.wall_seconds
            ));
        }
        out.push_str(&format!(
            "  golden: {} instructions, {} stores\n",
            self.golden.instructions, self.golden.stores
        ));
        out
    }
}

/// Errors that prevent the flow from producing a verdict (distinct from a
/// failing verdict, which is a [`TestReport`] with `passed == false`).
#[derive(Debug)]
pub enum FlowError {
    /// The compiler rejected the source.
    Compile(CompileError),
    /// A stimulus did not apply to its memory.
    Stimulus(String),
    /// The golden reference itself failed — the test case (not the
    /// compiler) is broken.
    Golden(String),
    /// XML→simulator elaboration failed.
    Elaborate(ElaborateConfigError),
    /// The kernel detected a model error (zero-delay loop).
    Kernel(SimError),
    /// A configuration exceeded the tick watchdog.
    Timeout {
        /// Configuration name.
        config: String,
        /// The watchdog value.
        max_ticks: u64,
    },
    /// The RTG was inconsistent.
    Rtg(String),
    /// A probe names a signal the datapath does not have.
    Probe {
        /// Configuration name.
        config: String,
        /// The unknown signal.
        signal: String,
    },
    /// The selected engine cannot honour a requested feature
    /// (probes/trace/coverage need the event kernel).
    Engine {
        /// The selected engine.
        engine: Engine,
        /// What was requested.
        feature: String,
    },
    /// A requested fault injection is unusable: the target signal or
    /// memory exists in no executed configuration, or the bit/address is
    /// out of range.
    Fault(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Compile(e) => write!(f, "compile: {e}"),
            FlowError::Stimulus(m) => write!(f, "stimulus: {m}"),
            FlowError::Golden(m) => write!(f, "golden reference: {m}"),
            FlowError::Elaborate(e) => write!(f, "elaborate: {e}"),
            FlowError::Kernel(e) => write!(f, "kernel: {e}"),
            FlowError::Timeout { config, max_ticks } => {
                write!(f, "configuration '{config}' exceeded {max_ticks} ticks")
            }
            FlowError::Rtg(m) => write!(f, "rtg: {m}"),
            FlowError::Probe { config, signal } => {
                write!(f, "configuration '{config}' has no signal '{signal}' to probe")
            }
            FlowError::Engine { engine, feature } => {
                write!(f, "engine '{engine}' does not support {feature} (use --engine event)")
            }
            FlowError::Fault(m) => write!(f, "fault injection: {m}"),
        }
    }
}

impl Error for FlowError {}

impl From<CompileError> for FlowError {
    fn from(e: CompileError) -> Self {
        FlowError::Compile(e)
    }
}

impl From<ElaborateConfigError> for FlowError {
    fn from(e: ElaborateConfigError) -> Self {
        FlowError::Elaborate(e)
    }
}

impl From<SimError> for FlowError {
    fn from(e: SimError) -> Self {
        FlowError::Kernel(e)
    }
}

/// Builder for one test-flow run.
///
/// ```
/// use fpgatest::flow::TestFlow;
/// use fpgatest::stimulus::Stimulus;
///
/// # fn main() -> Result<(), fpgatest::flow::FlowError> {
/// let report = TestFlow::new(
///     "double",
///     "mem inp[4]; mem out[4];
///      void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = inp[i] * 2; } }",
/// )
/// .stimulus("inp", Stimulus::from_values([1, 2, 3, 4]))
/// .run()?;
/// assert!(report.passed);
/// assert_eq!(report.sim_mems["out"][3], Some(8));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TestFlow {
    name: String,
    source: String,
    options: FlowOptions,
    stimuli: Vec<(String, Stimulus)>,
}

impl TestFlow {
    /// Creates a flow for a named source program.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        TestFlow {
            name: name.into(),
            source: source.into(),
            options: FlowOptions::default(),
            stimuli: Vec::new(),
        }
    }

    /// Replaces the whole option block.
    pub fn with_options(mut self, options: FlowOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the number of temporal partitions.
    pub fn with_partitions(mut self, partitions: usize) -> Self {
        self.options.compile.partitions = partitions;
        self
    }

    /// Sets the design data width.
    pub fn with_width(mut self, width: u32) -> Self {
        self.options.compile.width = width;
        self
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.options.compile.policy = policy;
        self
    }

    /// Selects the simulation engine.
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.options.engine = engine;
        self
    }

    /// Enables the compiler's TAC optimization passes.
    pub fn with_optimize(mut self, optimize: bool) -> Self {
        self.options.compile.optimize = optimize;
        self
    }

    /// Enables VCD tracing of clock/done per configuration.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.options.trace = trace;
        self
    }

    /// Enables FSM state/transition and operator-activation coverage
    /// collection per configuration.
    pub fn with_coverage(mut self, coverage: bool) -> Self {
        self.options.coverage = coverage;
        self
    }

    /// Records every change of a datapath signal (by name). Temps live in
    /// registers named `t<N>_q`; memory ports are `<mem>_addr`,
    /// `<mem>_dout`, …; the completion flag is `done`.
    pub fn probe(mut self, signal: impl Into<String>) -> Self {
        self.options.probes.push(signal.into());
        self
    }

    /// Adds initial contents for a memory.
    pub fn stimulus(mut self, mem: impl Into<String>, stimulus: Stimulus) -> Self {
        self.stimuli.push((mem.into(), stimulus));
        self
    }

    /// Runs the full flow.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] when the flow cannot produce a verdict;
    /// compiler bugs manifest as `Ok(report)` with `passed == false`.
    pub fn run(&self) -> Result<TestReport, FlowError> {
        self.run_recorded(&mut Recorder::new())
    }

    /// [`run`](Self::run) with every pipeline stage traced into
    /// `recorder`: `flow.parse`, `flow.lower`, `flow.transform`,
    /// `flow.golden`, `flow.elaborate`, `flow.simulate.<config>`, and
    /// `flow.compare`.
    ///
    /// # Errors
    ///
    /// See [`run`](Self::run).
    pub fn run_recorded(&self, recorder: &mut Recorder) -> Result<TestReport, FlowError> {
        let span = recorder.start("flow.parse");
        let parse_event = span_event_start(&self.options.events, "flow.parse");
        let program = nenya::lang::parse(&self.source)
            .map_err(|e| FlowError::Compile(CompileError::from(e)))?;
        recorder.attr(span, "source_lines", program.source_lines);
        recorder.end(span);
        span_event_end(&self.options.events, "flow.parse", parse_event);

        let span = recorder.start("flow.lower");
        let lower_event = span_event_start(&self.options.events, "flow.lower");
        let design = compile_program(&self.name, &program, &self.options.compile)?;
        recorder.attr(span, "configs", design.configs.len());
        recorder.attr(span, "operators", design.operator_count());
        recorder.end(span);
        span_event_end(&self.options.events, "flow.lower", lower_event);

        run_design_recorded(&design, &self.stimuli, &self.options, recorder)
    }
}

/// Runs the verification flow over an already-compiled design.
///
/// # Errors
///
/// See [`TestFlow::run`].
pub fn run_design(
    design: &Design,
    stimuli: &[(String, Stimulus)],
    options: &FlowOptions,
) -> Result<TestReport, FlowError> {
    run_design_recorded(design, stimuli, options, &mut Recorder::new())
}

/// [`run_design`] with stage spans traced into `recorder` (see
/// [`TestFlow::run_recorded`] for the span names).
///
/// # Errors
///
/// See [`TestFlow::run`].
pub fn run_design_recorded(
    design: &Design,
    stimuli: &[(String, Stimulus)],
    options: &FlowOptions,
    recorder: &mut Recorder,
) -> Result<TestReport, FlowError> {
    preflight(options)?;
    let initial = initial_images(design, stimuli)?;
    let golden = run_golden(design, initial.clone(), options, recorder)?;

    // Artifact generation (XML + stylesheet translations + metrics),
    // plus the engine-independent parse products (netlists, FSM tables)
    // the simulation stage consumes.
    let transform_span = recorder.start("flow.transform");
    let transform_event = span_event_start(&options.events, "flow.transform");
    let parts = prepare_parts(design)?;
    recorder.attr(transform_span, "configs", design.configs.len());
    recorder.end(transform_span);
    span_event_end(&options.events, "flow.transform", transform_event);

    simulate_prepared(design, &parts, initial, golden, options, recorder)
}

/// Rejects option combinations the flow cannot honour, and fires the
/// planted-panic test hook.
fn preflight(options: &FlowOptions) -> Result<(), FlowError> {
    if options.planted_panic {
        panic!("planted panic: FlowOptions::planted_panic is set");
    }
    if options.engine != Engine::Event {
        let unsupported = if options.trace {
            Some("VCD tracing")
        } else if !options.probes.is_empty() {
            Some("signal probes")
        } else if options.coverage {
            Some("coverage collection")
        } else {
            None
        };
        if let Some(feature) = unsupported {
            return Err(FlowError::Engine {
                engine: options.engine,
                feature: feature.to_string(),
            });
        }
    }
    Ok(())
}

/// Initial memory images shared by the golden and simulated executions.
fn initial_images(
    design: &Design,
    stimuli: &[(String, Stimulus)],
) -> Result<BTreeMap<String, MemImage>, FlowError> {
    let mut initial = design.blank_images();
    for (mem, stimulus) in stimuli {
        let image = initial
            .get_mut(mem)
            .ok_or_else(|| FlowError::Stimulus(format!("no memory named '{mem}'")))?;
        stimulus
            .apply(image)
            .map_err(|m| FlowError::Stimulus(format!("memory '{mem}': {m}")))?;
    }
    Ok(initial)
}

/// Products of the golden software execution.
struct GoldenRun {
    stats: nenya::interp::ExecStats,
    mems: BTreeMap<String, MemImage>,
    seconds: f64,
}

fn run_golden(
    design: &Design,
    mut golden_mems: BTreeMap<String, MemImage>,
    options: &FlowOptions,
    recorder: &mut Recorder,
) -> Result<GoldenRun, FlowError> {
    let golden_span = recorder.start("flow.golden");
    let golden_event = span_event_start(&options.events, "flow.golden");
    let golden_started = Instant::now();
    let stats = design
        .execute_golden(&mut golden_mems, options.golden_step_limit)
        .map_err(FlowError::Golden)?;
    let seconds = golden_started.elapsed().as_secs_f64();
    recorder.attr(golden_span, "instructions", stats.instructions);
    recorder.end(golden_span);
    span_event_end(&options.events, "flow.golden", golden_event);
    Ok(GoldenRun {
        stats,
        mems: golden_mems,
        seconds,
    })
}

/// The transform-stage products of one design, precomputed once and
/// reusable across runs: XML documents, stylesheet translations, parsed
/// `.hds` netlists, and validated FSM tables. Everything here is plain
/// data (no interior mutability), so a `PreparedParts` can be shared
/// across threads.
struct PreparedParts {
    rtg_doc: xmlite::Document,
    /// `(config name, datapath.xml, fsm.xml)` in design order.
    docs: Vec<(String, xmlite::Document, xmlite::Document)>,
    config_artifacts: Vec<ConfigArtifacts>,
    /// Metrics template with the per-run fields (cycles/events/seconds)
    /// zeroed.
    config_metrics: Vec<ConfigMetrics>,
    /// Parsed `.hds` netlists, one per config (compiled-engine path).
    netlists: Vec<eventsim::netlist::Netlist>,
    /// Per-config control-unit description (compiled-engine path).
    fsm_tables: Vec<PreparedFsm>,
}

/// One configuration's parsed control unit, ready to attach to a
/// compiled engine.
struct PreparedFsm {
    name: String,
    table: FsmTable,
    conditions: Vec<String>,
    /// `(output name, width)` pairs.
    outputs: Vec<(String, u32)>,
}

fn prepare_parts(design: &Design) -> Result<PreparedParts, FlowError> {
    let rtg_doc = nenya::xml::emit_rtg(&design.rtg);
    let mut config_artifacts = Vec::new();
    let mut config_metrics = Vec::new();
    let mut docs = Vec::new();
    let mut netlists = Vec::new();
    let mut fsm_tables = Vec::new();
    for config in &design.configs {
        let dp_doc = nenya::xml::emit_datapath(&config.datapath);
        let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
        let behavior =
            xform::apply(&xform::stylesheets::fsm_to_behavior(), fsm_doc.root())
                .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Stylesheet(e.to_string())))?;
        let hds = xform::apply(&xform::stylesheets::datapath_to_hds(), dp_doc.root())
            .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Stylesheet(e.to_string())))?;
        let dp_dot = xform::apply(&xform::stylesheets::datapath_to_dot(), dp_doc.root())
            .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Stylesheet(e.to_string())))?;
        let fsm_dot = xform::apply(&xform::stylesheets::fsm_to_dot(), fsm_doc.root())
            .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Stylesheet(e.to_string())))?;
        let netlist = eventsim::hds::parse(&hds)
            .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Hds(e.to_string())))?;
        let fsm = nenya::xml::parse_fsm(&fsm_doc)
            .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Dialect(e.to_string())))?;
        let (table, cond_names, out_names) = crate::elaborate::fsm_to_table(&fsm)?;
        netlists.push(netlist);
        fsm_tables.push(PreparedFsm {
            name: fsm.name.clone(),
            table,
            conditions: cond_names,
            outputs: out_names,
        });
        config_metrics.push(ConfigMetrics {
            name: config.name.clone(),
            lo_xml_fsm: xmlite::loc(&fsm_doc),
            lo_xml_datapath: xmlite::loc(&dp_doc),
            lo_behav_fsm: behavior.lines().filter(|l| !l.trim().is_empty()).count(),
            operators: config.datapath.operator_count(),
            fsm_states: config.fsm.state_count(),
            cycles: 0,
            events: 0,
            sim_seconds: 0.0,
        });
        config_artifacts.push(ConfigArtifacts {
            name: config.name.clone(),
            datapath_xml: dp_doc.to_pretty_string(),
            fsm_xml: fsm_doc.to_pretty_string(),
            hds,
            behavior_src: behavior,
            datapath_dot: dp_dot,
            fsm_dot,
        });
        docs.push((config.name.clone(), dp_doc, fsm_doc));
    }
    Ok(PreparedParts {
        rtg_doc,
        docs,
        config_artifacts,
        config_metrics,
        netlists,
        fsm_tables,
    })
}

/// A compiled design with its transform-stage products precomputed, so
/// many stimulus sets can be simulated without re-running the compiler,
/// the stylesheets, or the netlist/FSM parsers — the compile-once,
/// simulate-many shape the serve subsystem's design cache is built on.
///
/// `PreparedDesign` is `Send + Sync` (plain data throughout), unlike the
/// built simulators themselves, so it can live in a cross-thread cache;
/// each run still builds its own engine state from these parts.
///
/// ```
/// use fpgatest::flow::{prepare_design, FlowOptions};
/// use fpgatest::stimulus::Stimulus;
///
/// # fn main() -> Result<(), fpgatest::flow::FlowError> {
/// let program = nenya::lang::parse(
///     "mem inp[4]; mem out[4];
///      void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = inp[i] * 2; } }",
/// ).map_err(nenya::CompileError::from)?;
/// let design = nenya::compile_program("double", &program, &Default::default())?;
/// let prepared = prepare_design(design)?;
/// for base in [0, 10] {
///     let stimuli = vec![("inp".to_string(), Stimulus::from_values([base + 1, base + 2, base + 3, base + 4]))];
///     let report = prepared.run(&stimuli, &FlowOptions::default())?;
///     assert!(report.passed);
/// }
/// # Ok(())
/// # }
/// ```
pub struct PreparedDesign {
    design: Design,
    parts: PreparedParts,
}

/// The golden software reference's products for one `(design, stimuli)`
/// pair, captured by [`PreparedDesign::prepare_golden`] and replayed by
/// [`PreparedDesign::run_with_golden`]. Plain data (`Send + Sync`), so a
/// campaign's worker shards can share one.
pub struct PreparedGolden {
    initial: BTreeMap<String, MemImage>,
    stats: nenya::interp::ExecStats,
    mems: BTreeMap<String, MemImage>,
}

impl PreparedDesign {
    /// The compiled design these parts were prepared from.
    pub fn design(&self) -> &Design {
        &self.design
    }

    /// Runs the simulation + comparison stages against this prepared
    /// design. Equivalent to [`run_design`] minus the (already done)
    /// transform stage: same verdicts, same errors, same report shape.
    ///
    /// # Errors
    ///
    /// See [`TestFlow::run`].
    pub fn run(
        &self,
        stimuli: &[(String, Stimulus)],
        options: &FlowOptions,
    ) -> Result<TestReport, FlowError> {
        self.run_recorded(stimuli, options, &mut Recorder::new())
    }

    /// [`run`](Self::run) with stage spans traced into `recorder`
    /// (`flow.golden`, `flow.elaborate`, `flow.simulate.<config>`,
    /// `flow.compare` — no `flow.transform`: that work was done once at
    /// preparation time).
    ///
    /// # Errors
    ///
    /// See [`TestFlow::run`].
    pub fn run_recorded(
        &self,
        stimuli: &[(String, Stimulus)],
        options: &FlowOptions,
        recorder: &mut Recorder,
    ) -> Result<TestReport, FlowError> {
        preflight(options)?;
        let initial = initial_images(&self.design, stimuli)?;
        let golden = run_golden(&self.design, initial.clone(), options, recorder)?;
        simulate_prepared(&self.design, &self.parts, initial, golden, options, recorder)
    }

    /// Runs the golden software reference once for a fixed stimulus set
    /// and captures its products, so many subsequent simulations of the
    /// same prepared design (fault campaigns especially) skip it. The
    /// stimuli are bound in: a [`PreparedGolden`] only ever replays
    /// against the inputs it was computed from.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Stimulus`] for a bad stimulus and
    /// [`FlowError::Golden`] when the reference itself fails.
    pub fn prepare_golden(
        &self,
        stimuli: &[(String, Stimulus)],
        options: &FlowOptions,
    ) -> Result<PreparedGolden, FlowError> {
        let initial = initial_images(&self.design, stimuli)?;
        let golden = run_golden(&self.design, initial.clone(), options, &mut Recorder::new())?;
        Ok(PreparedGolden {
            initial,
            stats: golden.stats,
            mems: golden.mems,
        })
    }

    /// Runs the simulation + comparison stages against a precomputed
    /// [`PreparedGolden`]: same verdicts, failure strings, and mismatch
    /// reports as [`run`](Self::run), minus the per-run golden
    /// execution. The report's `golden_seconds` is 0 (nothing ran).
    /// Faults in `options.faults` apply normally — SRAM corruptions edit
    /// a private clone of the captured initial images.
    ///
    /// # Errors
    ///
    /// See [`TestFlow::run`].
    pub fn run_with_golden(
        &self,
        golden: &PreparedGolden,
        options: &FlowOptions,
    ) -> Result<TestReport, FlowError> {
        preflight(options)?;
        simulate_prepared(
            &self.design,
            &self.parts,
            golden.initial.clone(),
            GoldenRun {
                stats: golden.stats,
                mems: golden.mems.clone(),
                seconds: 0.0,
            },
            options,
            &mut Recorder::new(),
        )
    }

    /// Runs up to [`LANES`] independent lane configurations — each with
    /// its own stimuli and its own fault list — through **one** batch-
    /// engine walk of every configuration, instead of one full flow per
    /// lane. Each lane's verdict, failure strings, cycle counts, and
    /// final memories are bit-identical to running that lane alone with
    /// `--engine level` (the per-lane bit-identity contract; see
    /// DESIGN.md). Golden reference executions are deduplicated across
    /// lanes with equal initial images, so a 64-site fault campaign
    /// pays for one golden run and one schedule walk.
    ///
    /// `options.faults` must be empty — faults are per lane here.
    /// Lane-scoped problems (bad stimulus, fault out of range, timeout,
    /// design failure) land in that lane's [`LaneReport`]; only design-
    /// scoped problems (RTG errors, netlist rejection, feature
    /// preflight) abort the whole call.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError`] for design-scoped problems as above.
    pub fn run_batch(
        &self,
        lanes: &[BatchLaneSpec],
        options: &FlowOptions,
    ) -> Result<BatchRunReport, FlowError> {
        let mut batch_options = options.clone();
        batch_options.engine = Engine::Batch;
        preflight(&batch_options)?;
        if !options.faults.is_empty() {
            return Err(FlowError::Fault(
                "batch lane runs inject faults per lane; FlowOptions::faults must be empty"
                    .to_string(),
            ));
        }
        if lanes.is_empty() || lanes.len() > LANES {
            return Err(FlowError::Stimulus(format!(
                "batch run needs 1..={LANES} lanes, got {}",
                lanes.len()
            )));
        }
        let design = &self.design;
        let parts = &self.parts;
        let mut recorder = Recorder::new();

        struct LaneState {
            sim_mems: BTreeMap<String, MemImage>,
            golden: Option<usize>,
            fault_applied: Vec<bool>,
            failure: Option<String>,
            timed_out: Option<String>,
            flow_error: Option<String>,
            cycles: u64,
            live: bool,
        }

        // Per-lane setup: initial images, deduplicated golden runs, and
        // the one-time SRAM-corruption edits (mirroring the sequential
        // flow, which edits images once before the first configuration).
        let mut golden_runs: Vec<(BTreeMap<String, MemImage>, BTreeMap<String, MemImage>)> =
            Vec::new();
        let mut states: Vec<LaneState> = Vec::new();
        for spec in lanes {
            let mut state = LaneState {
                sim_mems: BTreeMap::new(),
                golden: None,
                fault_applied: vec![false; spec.faults.len()],
                failure: None,
                timed_out: None,
                flow_error: None,
                cycles: 0,
                live: true,
            };
            let initial = match initial_images(design, &spec.stimuli) {
                Ok(initial) => initial,
                Err(e) => {
                    state.flow_error = Some(e.to_string());
                    state.live = false;
                    states.push(state);
                    continue;
                }
            };
            let golden = golden_runs.iter().position(|(key, _)| *key == initial);
            let golden = match golden {
                Some(index) => index,
                None => match run_golden(design, initial.clone(), options, &mut recorder) {
                    Ok(run) => {
                        golden_runs.push((initial.clone(), run.mems));
                        golden_runs.len() - 1
                    }
                    Err(e) => {
                        state.flow_error = Some(e.to_string());
                        state.live = false;
                        states.push(state);
                        continue;
                    }
                },
            };
            state.golden = Some(golden);
            state.sim_mems = initial;
            for (i, fault) in spec.faults.iter().enumerate() {
                if let FaultSpec::SramCorrupt { mem, addr, bit } = fault {
                    if let Some(image) = state.sim_mems.get_mut(mem) {
                        if *addr >= image.len() || *bit >= design.width {
                            state.flow_error = Some(
                                FlowError::Fault(format!(
                                    "{fault}: address or bit out of range for '{mem}' ({} words of width {})",
                                    image.len(),
                                    design.width
                                ))
                                .to_string(),
                            );
                            state.live = false;
                            break;
                        }
                        image[*addr] = Some(image[*addr].unwrap_or(0) ^ (1i64 << bit));
                        state.fault_applied[i] = true;
                    }
                }
            }
            states.push(state);
        }

        // Configuration loop: one fresh batch engine per configuration,
        // all live lanes walking together, SRAM contents carried across
        // reconfigurations per lane.
        let max_cycles = options.max_ticks / COMPILED_CLOCK_PERIOD;
        let mut sim_wall_seconds = 0.0f64;
        let order = design
            .rtg
            .execution_order()
            .map_err(|e| FlowError::Rtg(e.to_string()))?;
        for node in order {
            let config = design
                .configs
                .iter()
                .position(|c| c.datapath.name == node.datapath)
                .ok_or_else(|| FlowError::Rtg(format!("unknown datapath '{}'", node.datapath)))?;
            let (config_name, _, _) = &parts.docs[config];
            let netlist = &parts.netlists[config];
            let mut sim = BatchSim::from_netlist(netlist)
                .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Netlist(e.to_string())))?;
            let fsm = &parts.fsm_tables[config];
            let conds: Vec<&str> = fsm.conditions.iter().map(String::as_str).collect();
            let outs: Vec<(&str, u32)> =
                fsm.outputs.iter().map(|(n, w)| (n.as_str(), *w)).collect();
            sim.add_control_unit(fsm.name.as_str(), &conds, &outs, fsm.table.clone())
                .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Netlist(e.to_string())))?;

            // Per-lane signal-fault injection (a signal may exist in
            // several configurations; the fault lands in all of them).
            for (lane, spec) in lanes.iter().enumerate() {
                if !states[lane].live {
                    continue;
                }
                for (i, fault) in spec.faults.iter().enumerate() {
                    let injected = match fault {
                        FaultSpec::StuckAt { signal, bit, value } => {
                            sim.inject_stuck_at_lane(signal, *bit, *value, lane)
                        }
                        FaultSpec::BitFlip { signal, bit, cycle }
                        | FaultSpec::SeuReg { signal, bit, cycle } => {
                            sim.inject_transient_flip_lane(signal, *bit, *cycle, lane)
                        }
                        FaultSpec::SramCorrupt { .. } => continue, // image edit above
                    };
                    match injected {
                        Ok(true) => states[lane].fault_applied[i] = true,
                        Ok(false) => {}
                        Err(e) => {
                            states[lane].flow_error =
                                Some(FlowError::Fault(format!("{fault}: {e}")).to_string());
                            states[lane].live = false;
                            break;
                        }
                    }
                }
            }

            // Preload SRAM contents per lane (same contract as the
            // sequential compiled path).
            let mem_list: Vec<String> = netlist
                .instances()
                .iter()
                .filter(|i| i.kind == "sram")
                .map(|i| i.name.clone())
                .collect();
            for (lane, state) in states.iter_mut().enumerate() {
                if !state.live {
                    continue;
                }
                for mem_name in &mem_list {
                    let size = sim.mem_size(mem_name).expect("sram instances have handles");
                    let Some(image) = state.sim_mems.get(mem_name) else {
                        state.flow_error = Some(
                            FlowError::Stimulus(format!(
                                "memory '{mem_name}' missing from design"
                            ))
                            .to_string(),
                        );
                        state.live = false;
                        break;
                    };
                    if image.len() != size {
                        state.failure = Some(format!(
                            "configuration '{config_name}': memory '{mem_name}' has {size} words in the netlist but {} in the design",
                            image.len()
                        ));
                        state.live = false;
                        break;
                    }
                    sim.load_mem(mem_name, lane, image);
                }
            }

            let live_mask: u64 = states
                .iter()
                .enumerate()
                .filter(|(_, s)| s.live)
                .fold(0u64, |m, (lane, _)| m | (1u64 << lane));
            if live_mask == 0 {
                break;
            }
            sim.set_active(live_mask);
            let sim_started = Instant::now();
            let summary = sim.run_batch(max_cycles);
            sim_wall_seconds += sim_started.elapsed().as_secs_f64();

            for (lane, state) in states.iter_mut().enumerate() {
                if live_mask & (1u64 << lane) == 0 {
                    continue;
                }
                let result = summary.lanes[lane].as_ref().expect("lane was active");
                state.cycles += result.cycles;
                match &result.outcome {
                    LaneOutcome::Done | LaneOutcome::Watchpoint(_) => {
                        for mem_name in &mem_list {
                            let snapshot = sim
                                .snapshot_mem(mem_name, lane)
                                .expect("sram instances have handles");
                            state.sim_mems.insert(mem_name.clone(), snapshot);
                        }
                    }
                    LaneOutcome::CycleLimit => {
                        state.timed_out = Some(
                            FlowError::Timeout {
                                config: config_name.clone(),
                                max_ticks: options.max_ticks,
                            }
                            .to_string(),
                        );
                        state.live = false;
                    }
                    LaneOutcome::Failed(m) => {
                        state.failure = Some(format!(
                            "configuration '{config_name}': {}",
                            CycleSimError::Failed(m.clone())
                        ));
                        state.live = false;
                    }
                }
            }
        }

        // Verdict synthesis per lane, mirroring the sequential tail:
        // unapplied faults only matter when every configuration ran,
        // comparison only happens on clean completion.
        let reports = states
            .into_iter()
            .zip(lanes)
            .map(|(mut state, spec)| {
                if state.failure.is_none()
                    && state.timed_out.is_none()
                    && state.flow_error.is_none()
                {
                    for (i, fault) in spec.faults.iter().enumerate() {
                        if !state.fault_applied[i] {
                            state.flow_error = Some(
                                FlowError::Fault(format!(
                                    "'{fault}' matched no signal or memory in any executed configuration"
                                ))
                                .to_string(),
                            );
                            break;
                        }
                    }
                }
                let mut mismatches = Vec::new();
                if state.failure.is_none()
                    && state.timed_out.is_none()
                    && state.flow_error.is_none()
                {
                    let golden = &golden_runs[state.golden.expect("clean lanes ran golden")].1;
                    for (name, golden_image) in golden {
                        mismatches.extend(diff_images(name, golden_image, &state.sim_mems[name]));
                    }
                }
                let passed = state.failure.is_none()
                    && state.timed_out.is_none()
                    && state.flow_error.is_none()
                    && mismatches.is_empty();
                LaneReport {
                    passed,
                    failure: state.failure,
                    timed_out: state.timed_out,
                    flow_error: state.flow_error,
                    mismatches,
                    sim_mems: state.sim_mems,
                    cycles: state.cycles,
                }
            })
            .collect();
        Ok(BatchRunReport {
            lanes: reports,
            sim_wall_seconds,
        })
    }
}

/// One lane of a [`PreparedDesign::run_batch`] call: its stimuli and the
/// faults to inject into that lane only.
#[derive(Debug, Clone, Default)]
pub struct BatchLaneSpec {
    /// `(memory name, stimulus)` pairs, as in [`PreparedDesign::run`].
    pub stimuli: Vec<(String, Stimulus)>,
    /// Faults scoped to this lane (any [`FaultSpec`] class).
    pub faults: Vec<FaultSpec>,
}

/// One lane's verdict from [`PreparedDesign::run_batch`], carrying the
/// same strings a sequential [`TestReport`] / [`FlowError`] would.
#[derive(Debug, Clone)]
pub struct LaneReport {
    /// Clean completion with golden-identical memories.
    pub passed: bool,
    /// Design failure, as [`TestReport::failure`] would render it.
    pub failure: Option<String>,
    /// Tick-budget exhaustion, as [`FlowError::Timeout`] renders it.
    pub timed_out: Option<String>,
    /// Any other per-lane flow error (bad stimulus, fault out of range,
    /// golden failure, fault matching nothing), rendered via
    /// [`FlowError`]'s `Display`.
    pub flow_error: Option<String>,
    /// Final-memory divergences vs this lane's golden run.
    pub mismatches: Vec<Mismatch>,
    /// Final simulated memories (state before the failing configuration
    /// when the lane failed, like the sequential report).
    pub sim_mems: BTreeMap<String, MemImage>,
    /// Cycles executed, summed across configurations.
    pub cycles: u64,
}

/// Result of [`PreparedDesign::run_batch`]: one report per requested
/// lane, in request order.
#[derive(Debug, Clone)]
pub struct BatchRunReport {
    /// Per-lane verdicts.
    pub lanes: Vec<LaneReport>,
    /// Wall-clock seconds spent inside the batch engine's schedule
    /// walks, summed across configurations — comparable to a sequential
    /// run's `summary.wall_seconds` (golden execution, elaboration, and
    /// comparison are excluded on both sides).
    pub sim_wall_seconds: f64,
}

/// Runs the transform stage (XML emission, stylesheet translation,
/// netlist + FSM-table parsing) once, yielding a [`PreparedDesign`] that
/// can be simulated many times.
///
/// # Errors
///
/// Returns [`FlowError::Elaborate`] when a stylesheet or parser rejects
/// the design's artifacts.
pub fn prepare_design(design: Design) -> Result<PreparedDesign, FlowError> {
    let parts = prepare_parts(&design)?;
    Ok(PreparedDesign { design, parts })
}

/// The simulation + comparison stages, shared by [`run_design_recorded`]
/// (which prepares parts inline) and [`PreparedDesign::run_recorded`]
/// (which reuses cached parts).
fn simulate_prepared(
    design: &Design,
    parts: &PreparedParts,
    initial: BTreeMap<String, MemImage>,
    golden: GoldenRun,
    options: &FlowOptions,
    recorder: &mut Recorder,
) -> Result<TestReport, FlowError> {
    // Simulation in RTG order, SRAM contents carried across
    // reconfigurations.
    let mut config_metrics = parts.config_metrics.clone();
    let mut sim_mems = initial;
    let mut runs = Vec::new();
    let mut failure = None;

    // Fault bookkeeping: every requested fault must either be injected
    // somewhere or be reported as a skip — never silently dropped. SRAM
    // corruption edits the initial images once, before the first
    // configuration preloads them (the flipped word must not re-flip at
    // later reconfigurations).
    let mut fault_applied = vec![false; options.faults.len()];
    // Every engine now expresses every fault class; the skip channel
    // stays for future inexpressible classes and for report parity.
    let fault_skips: Vec<String> = Vec::new();
    for (i, fault) in options.faults.iter().enumerate() {
        if let FaultSpec::SramCorrupt { mem, addr, bit } = fault {
            if let Some(image) = sim_mems.get_mut(mem) {
                if *addr >= image.len() || *bit >= design.width {
                    return Err(FlowError::Fault(format!(
                        "{fault}: address or bit out of range for '{mem}' ({} words of width {})",
                        image.len(),
                        design.width
                    )));
                }
                image[*addr] = Some(image[*addr].unwrap_or(0) ^ (1i64 << bit));
                fault_applied[i] = true;
            }
        }
    }
    let order = design
        .rtg
        .execution_order()
        .map_err(|e| FlowError::Rtg(e.to_string()))?;
    for node in order {
        let config = design
            .configs
            .iter()
            .position(|c| c.datapath.name == node.datapath)
            .ok_or_else(|| FlowError::Rtg(format!("unknown datapath '{}'", node.datapath)))?;
        let (config_name, dp_doc, fsm_doc) = &parts.docs[config];

        if options.engine != Engine::Event {
            // Compiled (cycle/level) path: interpret the same .hds netlist
            // and FSM table against the flat model instead of elaborating
            // event-kernel components.
            let elaborate_span = recorder.start("flow.elaborate");
            let elaborate_event = span_event_start(&options.events, "flow.elaborate");
            recorder.attr(elaborate_span, "config", config_name.as_str());
            recorder.attr(elaborate_span, "engine", options.engine.to_string());
            let netlist = &parts.netlists[config];
            let mut csim = CompiledSim::build(options.engine, netlist)
                .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Netlist(e.to_string())))?;
            let fsm = &parts.fsm_tables[config];
            let conds: Vec<&str> = fsm.conditions.iter().map(String::as_str).collect();
            let outs: Vec<(&str, u32)> =
                fsm.outputs.iter().map(|(n, w)| (n.as_str(), *w)).collect();
            csim.add_control_unit(&fsm.name, &conds, &outs, fsm.table.clone())
                .map_err(|e| FlowError::Elaborate(ElaborateConfigError::Netlist(e.to_string())))?;

            // Inject the signal faults this configuration can host (a
            // signal may exist in several configurations; the fault lands
            // in all of them, like a real manufacturing defect would).
            for (i, fault) in options.faults.iter().enumerate() {
                let injected = match fault {
                    FaultSpec::StuckAt { signal, bit, value } => csim
                        .inject_stuck(signal, *bit, *value)
                        .map_err(|e| FlowError::Fault(format!("{fault}: {e}")))?,
                    FaultSpec::BitFlip { signal, bit, cycle }
                    | FaultSpec::SeuReg { signal, bit, cycle } => csim
                        .inject_flip(signal, *bit, *cycle)
                        .map_err(|e| FlowError::Fault(format!("{fault}: {e}")))?,
                    FaultSpec::SramCorrupt { .. } => continue, // image edit above
                };
                if injected {
                    fault_applied[i] = true;
                }
            }
            if options.profile {
                csim.enable_profile();
            }
            recorder.end(elaborate_span);
            span_event_end(&options.events, "flow.elaborate", elaborate_event);

            // Preload SRAM contents (same contract as the event path).
            let mem_list: Vec<String> = netlist
                .instances()
                .iter()
                .filter(|i| i.kind == "sram")
                .map(|i| i.name.clone())
                .collect();
            for mem_name in &mem_list {
                let size = csim.mem_size(mem_name).expect("sram instances have handles");
                let image = sim_mems.get(mem_name).ok_or_else(|| {
                    FlowError::Stimulus(format!("memory '{mem_name}' missing from design"))
                })?;
                if image.len() != size {
                    failure = Some(format!(
                        "configuration '{config_name}': memory '{mem_name}' has {size} words in the netlist but {} in the design",
                        image.len()
                    ));
                    break;
                }
                csim.load_mem(mem_name, image);
            }
            if failure.is_some() {
                break;
            }

            let simulate_span = recorder.start(format!("flow.simulate.{config_name}"));
            let simulate_event =
                span_event_start(&options.events, &format!("flow.simulate.{config_name}"));
            let max_cycles = options.max_ticks / COMPILED_CLOCK_PERIOD;
            let started = Instant::now();
            let result = csim.run(max_cycles);
            let wall_seconds = started.elapsed().as_secs_f64();
            let (outcome, cycles, comb_evals) = match result {
                Ok(CycleSummary {
                    outcome: CycleOutcome::CycleLimit,
                    ..
                }) => {
                    return Err(FlowError::Timeout {
                        config: config_name.clone(),
                        max_ticks: options.max_ticks,
                    });
                }
                Ok(summary) => {
                    let outcome = match &summary.outcome {
                        CycleOutcome::Done => RunOutcome::Stopped("control unit done".into()),
                        CycleOutcome::Watchpoint(name) => {
                            RunOutcome::Stopped(format!("watchpoint '{name}'"))
                        }
                        CycleOutcome::CycleLimit => unreachable!("matched above"),
                    };
                    (outcome, summary.cycles, summary.comb_evals)
                }
                Err(e @ (CycleSimError::Failed(_) | CycleSimError::NoFixpoint { .. })) => {
                    failure = Some(format!("configuration '{config_name}': {e}"));
                    (
                        RunOutcome::Failed(e.to_string()),
                        csim.cycles(),
                        csim.comb_evals(),
                    )
                }
                // Build/CombinationalCycle cannot occur after construction.
                Err(e) => {
                    return Err(FlowError::Elaborate(ElaborateConfigError::Netlist(
                        e.to_string(),
                    )));
                }
            };
            recorder.attr(simulate_span, "cycles", cycles);
            recorder.attr(simulate_span, "comb_evals", comb_evals);
            recorder.end(simulate_span);
            span_event_end(
                &options.events,
                &format!("flow.simulate.{config_name}"),
                simulate_event,
            );

            config_metrics[config].cycles = cycles;
            config_metrics[config].sim_seconds = wall_seconds;
            runs.push(ConfigRun {
                name: config_name.clone(),
                summary: eventsim::RunSummary {
                    outcome,
                    end_time: SimTime(cycles * COMPILED_CLOCK_PERIOD),
                    events: 0,
                    updates: 0,
                    evals: comb_evals,
                    delta_cycles: 0,
                    max_queue_depth: 0,
                    wall_seconds,
                },
                kernel: KernelStats {
                    evals: comb_evals,
                    ..KernelStats::default()
                },
                hot_components: Vec::new(),
                cycles,
                vcd: None,
                probes: BTreeMap::new(),
                coverage: None,
                profile: options.profile.then(|| csim.profile()),
            });
            if failure.is_some() {
                break;
            }
            for mem_name in &mem_list {
                let snapshot = csim
                    .snapshot_mem(mem_name)
                    .expect("sram instances have handles");
                sim_mems.insert(mem_name.clone(), snapshot);
            }
            continue;
        }

        let elaborate_span = recorder.start("flow.elaborate");
        let elaborate_event = span_event_start(&options.events, "flow.elaborate");
        recorder.attr(elaborate_span, "config", config_name.as_str());
        let mut cs = if options.coverage {
            elaborate_config_instrumented(dp_doc, fsm_doc, true)?
        } else {
            elaborate_config(dp_doc, fsm_doc)?
        };
        recorder.attr(elaborate_span, "signals", cs.sim.signal_count());
        recorder.attr(elaborate_span, "components", cs.sim.component_count());
        recorder.end(elaborate_span);
        span_event_end(&options.events, "flow.elaborate", elaborate_event);

        // Preload SRAM contents. A size disagreement between the design's
        // memory map and the elaborated netlist is itself a compiler bug
        // worth reporting as a failing verdict.
        for (mem_name, handle) in &cs.mems {
            let image = sim_mems
                .get(mem_name)
                .ok_or_else(|| FlowError::Stimulus(format!("memory '{mem_name}' missing from design")))?;
            if image.len() != handle.size() {
                failure = Some(format!(
                    "configuration '{config_name}': memory '{mem_name}' has {} words in the netlist but {} in the design",
                    handle.size(),
                    image.len()
                ));
                break;
            }
            for (addr, word) in image.iter().enumerate() {
                if let Some(v) = word {
                    handle.store(addr, *v);
                }
            }
        }
        if failure.is_some() {
            break;
        }

        if options.trace {
            cs.sim.trace_signal(cs.clk);
            cs.sim.trace_signal(cs.done);
        }

        // Attach the requested probes.
        let mut probe_handles = Vec::new();
        for name in &options.probes {
            let signal = cs.sim.find_signal(name).ok_or_else(|| FlowError::Probe {
                config: config_name.clone(),
                signal: name.clone(),
            })?;
            let handle = eventsim::probe::ProbeHandle::new();
            cs.sim.add_component(eventsim::probe::Probe::new(
                format!("probe_{name}"),
                signal,
                handle.clone(),
            ));
            probe_handles.push((name.clone(), handle));
        }

        // Inject signal faults as ordinary kernel components; with no
        // faults requested nothing is added and the event schedule (and
        // every kernel counter) is bit-identical to a clean run.
        for (i, fault) in options.faults.iter().enumerate() {
            match fault {
                FaultSpec::StuckAt { signal, bit, value } => {
                    if let Some(id) = cs.sim.find_signal(signal) {
                        check_fault_bit(fault, *bit, cs.sim.signal_width(id))?;
                        cs.sim.add_component(eventsim::faults::StuckAtClamp::new(
                            format!("fault{i}"),
                            id,
                            *bit,
                            *value,
                        ));
                        fault_applied[i] = true;
                    }
                }
                FaultSpec::BitFlip { signal, bit, cycle }
                | FaultSpec::SeuReg { signal, bit, cycle } => {
                    if let Some(id) = cs.sim.find_signal(signal) {
                        check_fault_bit(fault, *bit, cs.sim.signal_width(id))?;
                        // Rising edges land at clock_period/2 + N*period;
                        // the flip fires one tick earlier so edge-sampled
                        // logic observes the upset value.
                        let edge = cs.clock_period / 2 + cycle * cs.clock_period;
                        cs.sim.add_component(eventsim::faults::TransientFlip::new(
                            format!("fault{i}"),
                            id,
                            *bit,
                            edge.saturating_sub(1),
                        ));
                        fault_applied[i] = true;
                    }
                }
                FaultSpec::SramCorrupt { .. } => {} // image edit above
            }
        }

        // The profiler hook is only installed on request; without it the
        // kernel's timing branch stays a single cached bool per run.
        let eval_profile = options.profile.then(|| {
            let (timer, handle) = eventsim::profile::EvalTimer::new();
            cs.sim.set_hook(Box::new(timer));
            handle
        });

        let simulate_span = recorder.start(format!("flow.simulate.{config_name}"));
        let simulate_event =
            span_event_start(&options.events, &format!("flow.simulate.{config_name}"));
        let summary = cs.sim.run(SimTime(options.max_ticks))?;
        recorder.attr(simulate_span, "events", summary.events);
        recorder.attr(simulate_span, "delta_cycles", summary.delta_cycles);
        recorder.attr(simulate_span, "end_time", summary.end_time.ticks());
        recorder.end(simulate_span);
        span_event_end(
            &options.events,
            &format!("flow.simulate.{config_name}"),
            simulate_event,
        );
        match &summary.outcome {
            RunOutcome::Stopped(_) => {}
            RunOutcome::Failed(message) => {
                failure = Some(format!("configuration '{config_name}': {message}"));
            }
            RunOutcome::TimeLimit => {
                return Err(FlowError::Timeout {
                    config: config_name.clone(),
                    max_ticks: options.max_ticks,
                });
            }
            RunOutcome::QueueEmpty => {
                failure = Some(format!(
                    "configuration '{config_name}': simulation went quiet before done"
                ));
            }
        }

        let cycles = summary.end_time.ticks() / cs.clock_period;
        config_metrics[config].cycles = cycles;
        config_metrics[config].events = summary.events;
        config_metrics[config].sim_seconds = summary.wall_seconds;
        let kernel = cs.sim.stats();
        let hot_components = cs
            .sim
            .hot_components(HOT_COMPONENT_LIMIT)
            .into_iter()
            .map(|(id, count)| (cs.sim.component_name(id).to_string(), count))
            .collect();
        let vcd = options
            .trace
            .then(|| eventsim::vcd::render(&cs.sim, config_name));
        let probes = probe_handles
            .into_iter()
            .map(|(name, handle)| {
                let history = handle
                    .history()
                    .into_iter()
                    .map(|(time, value)| (time.ticks(), value.try_i64()))
                    .collect();
                (name, history)
            })
            .collect();
        let coverage = cs.fsm_coverage.as_ref().map(|handle| {
            let fsm_cov = handle.snapshot();
            let visited_states = cs
                .state_names
                .iter()
                .enumerate()
                .filter(|(i, _)| fsm_cov.state_visits.get(*i).copied().unwrap_or(0) > 0)
                .map(|(_, name)| name.clone())
                .collect();
            // Sum kernel activations per functional-unit kind; kinds
            // instantiated but never reacted stay at 0 so callers can see
            // unexercised hardware.
            let kind_of: BTreeMap<&str, &str> = design.configs[config]
                .datapath
                .cells
                .iter()
                .filter(|c| FU_KINDS.contains(&c.kind.as_str()))
                .map(|c| (c.name.as_str(), c.kind.as_str()))
                .collect();
            let mut operator_activations: BTreeMap<String, u64> =
                kind_of.values().map(|kind| (kind.to_string(), 0)).collect();
            for (id, count) in cs.sim.hot_components(usize::MAX) {
                if let Some(kind) = kind_of.get(cs.sim.component_name(id)) {
                    *operator_activations.entry(kind.to_string()).or_insert(0) += count;
                }
            }
            ConfigCoverage {
                visited_states,
                state_total: cs.state_names.len(),
                transitions_taken: fsm_cov.transitions_taken(),
                transition_total: cs.transition_total,
                operator_activations,
            }
        });
        // Fold per-component evaluation timing into per-class totals:
        // functional units report under their datapath kind, everything
        // else under its name with trailing instance digits stripped.
        let profile = eval_profile.map(|handle| {
            let kind_of: BTreeMap<&str, &str> = design.configs[config]
                .datapath
                .cells
                .iter()
                .filter(|c| FU_KINDS.contains(&c.kind.as_str()))
                .map(|c| (c.name.as_str(), c.kind.as_str()))
                .collect();
            let timings = handle
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let mut by_class: BTreeMap<String, (u64, u64)> = BTreeMap::new();
            for (index, (evals, nanos)) in timings.components.iter().enumerate() {
                if *evals == 0 {
                    continue;
                }
                let name = cs.sim.component_name(eventsim::ComponentId::from_index(index));
                let class = kind_of
                    .get(name)
                    .copied()
                    .unwrap_or_else(|| component_class(name));
                let slot = by_class.entry(class.to_string()).or_insert((0, 0));
                slot.0 += evals;
                slot.1 += nanos;
            }
            let mut classes: Vec<ClassProfile> = by_class
                .into_iter()
                .map(|(class, (evals, nanos))| ClassProfile { class, evals, nanos })
                .collect();
            classes.sort_by(|a, b| b.nanos.cmp(&a.nanos).then_with(|| a.class.cmp(&b.class)));
            ConfigProfile {
                classes,
                ..ConfigProfile::default()
            }
        });
        runs.push(ConfigRun {
            name: config_name.clone(),
            summary,
            kernel,
            hot_components,
            cycles,
            vcd,
            probes,
            coverage,
            profile,
        });

        if failure.is_some() {
            break;
        }

        // Write back memory contents for the next configuration.
        for (mem_name, handle) in &cs.mems {
            sim_mems.insert(mem_name.clone(), handle.snapshot());
        }
    }

    // A fault that matched nothing anywhere is a campaign bug, not a
    // verdict — but only when every configuration actually ran (an early
    // failure may have skipped the configuration hosting the target).
    if failure.is_none() {
        for (i, fault) in options.faults.iter().enumerate() {
            if !fault_applied[i] {
                return Err(FlowError::Fault(format!(
                    "'{fault}' matched no signal or memory in any executed configuration"
                )));
            }
        }
    }

    // Comparison of data content.
    let compare_span = recorder.start("flow.compare");
    let compare_event = span_event_start(&options.events, "flow.compare");
    let mut mismatches = Vec::new();
    if failure.is_none() {
        for (name, golden_image) in &golden.mems {
            let sim_image = &sim_mems[name];
            mismatches.extend(diff_images(name, golden_image, sim_image));
        }
    }
    recorder.attr(compare_span, "mismatches", mismatches.len());
    recorder.end(compare_span);
    span_event_end(&options.events, "flow.compare", compare_event);

    let passed = failure.is_none() && mismatches.is_empty();
    Ok(TestReport {
        design: design.name.clone(),
        passed,
        failure,
        mismatches,
        golden: golden.stats,
        runs,
        metrics: DesignMetrics {
            design: design.name.clone(),
            lo_java: design.source_lines,
            configs: config_metrics,
            golden_seconds: golden.seconds,
        },
        artifacts: options.keep_artifacts.then(|| Artifacts {
            rtg_xml: parts.rtg_doc.to_pretty_string(),
            rtg_dot: xform::apply(&xform::stylesheets::rtg_to_dot(), parts.rtg_doc.root())
                .unwrap_or_default(),
            controller_src: xform::apply(
                &xform::stylesheets::rtg_to_controller(),
                parts.rtg_doc.root(),
            )
            .unwrap_or_default(),
            configs: parts.config_artifacts.clone(),
        }),
        sim_mems,
        golden_mems: golden.mems,
        fault_skips,
    })
}

/// Emits a span-start event and returns the matching wall-clock anchor;
/// `None` when the sink is disabled, so disabled runs never sample time.
fn span_event_start(sink: &EventSink, name: &str) -> Option<Instant> {
    if !sink.is_enabled() {
        return None;
    }
    sink.emit(&Event::SpanStart {
        name: name.to_string(),
    });
    Some(Instant::now())
}

/// Closes a span opened by [`span_event_start`].
fn span_event_end(sink: &EventSink, name: &str, started: Option<Instant>) {
    if let Some(started) = started {
        sink.emit(&Event::SpanEnd {
            name: name.to_string(),
            wall_seconds: started.elapsed().as_secs_f64(),
        });
    }
}

/// Profile class for components without a datapath kind: the instance
/// name with trailing digits stripped ("mux3" → "mux", "img" → "img").
fn component_class(name: &str) -> &str {
    let stripped = name.trim_end_matches(|c: char| c.is_ascii_digit());
    if stripped.is_empty() {
        name
    } else {
        stripped
    }
}

/// Rejects fault bit indices outside the target signal's width.
fn check_fault_bit(fault: &FaultSpec, bit: u32, width: u32) -> Result<(), FlowError> {
    if bit >= width {
        return Err(FlowError::Fault(format!(
            "{fault}: bit {bit} out of range for width {width}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_flow_passes() {
        let report = TestFlow::new(
            "sum",
            "mem inp[4]; mem out[1];
             void main() { int s = 0; int i; for (i = 0; i < 4; i = i + 1) { s = s + inp[i]; } out[0] = s; }",
        )
        .stimulus("inp", Stimulus::from_values([10, 20, 30, 40]))
        .run()
        .unwrap();
        assert!(report.passed, "{}", report.render());
        assert_eq!(report.sim_mems["out"][0], Some(100));
        assert_eq!(report.golden_mems["out"][0], Some(100));
        assert!(report.runs[0].cycles > 0);
        assert!(report.metrics.configs[0].operators > 0);
        assert!(report.artifacts.is_some());
    }

    #[test]
    fn partitioned_flow_passes() {
        let report = TestFlow::new(
            "twophase",
            "mem a[8]; mem b[8];
             void main() {
                 int i;
                 for (i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
                 int j;
                 for (j = 0; j < 8; j = j + 1) { b[j] = a[j] + 1; }
             }",
        )
        .with_partitions(2)
        .run()
        .unwrap();
        assert!(report.passed, "{}", report.render());
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.sim_mems["b"][7], Some(22));
    }

    #[test]
    fn golden_failure_is_a_flow_error() {
        let err = TestFlow::new("bad", "mem out[1]; void main() { int z = 0; out[0] = 1 / z; }")
            .run()
            .unwrap_err();
        assert!(matches!(err, FlowError::Golden(_)), "{err}");
    }

    #[test]
    fn unknown_stimulus_memory_rejected() {
        let err = TestFlow::new("s", "mem out[1]; void main() { out[0] = 1; }")
            .stimulus("nope", Stimulus::from_values([1]))
            .run()
            .unwrap_err();
        assert!(matches!(err, FlowError::Stimulus(_)));
    }

    #[test]
    fn tracing_produces_vcd() {
        let report = TestFlow::new("t", "mem out[1]; void main() { out[0] = 5; }")
            .with_trace(true)
            .run()
            .unwrap();
        let vcd = report.runs[0].vcd.as_ref().unwrap();
        assert!(vcd.contains("$var wire 1"));
    }

    #[test]
    fn probes_record_signal_histories() {
        let report = TestFlow::new(
            "p",
            "mem out[4]; void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = i; } }",
        )
        .probe("done")
        .probe("out_we")
        .run()
        .unwrap();
        let probes = &report.runs[0].probes;
        // done goes 0 then 1 at the end.
        let done = &probes["done"];
        assert_eq!(done.first().map(|(_, v)| *v), Some(Some(0)));
        assert_eq!(done.last().map(|(_, v)| *v), Some(Some(-1))); // 1-bit true
        // The write enable pulsed once per store.
        let we_rises = probes["out_we"]
            .iter()
            .filter(|(_, v)| *v == Some(-1))
            .count();
        assert_eq!(we_rises, 4);
    }

    #[test]
    fn wiring_many_probes_does_not_rescan() {
        // Each probe resolves its signal through the simulator's name
        // index (O(1)); the wiring loop is linear in the number of
        // probes. 512 probes over this design complete in well under a
        // second — the historical per-probe linear scan made this loop
        // quadratic in generated designs with many probes.
        let mut flow = TestFlow::new(
            "p",
            "mem out[4]; void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = i; } }",
        );
        for _ in 0..256 {
            flow = flow.probe("done").probe("out_we");
        }
        let started = std::time::Instant::now();
        let report = flow.run().unwrap();
        assert!(
            started.elapsed() < std::time::Duration::from_secs(60),
            "probe wiring took {:?}",
            started.elapsed()
        );
        let probes = &report.runs[0].probes;
        assert_eq!(probes["done"].last().map(|(_, v)| *v), Some(Some(-1)));
        assert_eq!(
            probes["out_we"].iter().filter(|(_, v)| *v == Some(-1)).count(),
            4
        );
    }

    #[test]
    fn unknown_probe_signal_is_an_error() {
        let err = TestFlow::new("p", "mem out[1]; void main() { out[0] = 1; }")
            .probe("no_such_signal")
            .run()
            .unwrap_err();
        assert!(matches!(err, FlowError::Probe { .. }), "{err}");
    }

    #[test]
    fn coverage_reports_states_and_operators() {
        let report = TestFlow::new(
            "cov",
            "mem out[4]; void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = i + 7; } }",
        )
        .with_coverage(true)
        .run()
        .unwrap();
        let cov = report.runs[0].coverage.as_ref().expect("coverage collected");
        // A straight-line run visits every state and takes every transition
        // at least once, except possibly untaken conditional arms.
        assert!(cov.state_total > 0);
        assert_eq!(cov.visited_states.len(), cov.state_total);
        assert!(cov.transitions_taken > 0);
        assert!(cov.transitions_taken <= cov.transition_total);
        // The loop exercises an adder and a comparator.
        assert!(cov.operator_activations.get("add").copied().unwrap_or(0) > 0);
        assert!(cov.operator_activations.get("lt").copied().unwrap_or(0) > 0);
        // Without the option, no coverage is collected.
        let plain = TestFlow::new("nc", "mem out[1]; void main() { out[0] = 1; }")
            .run()
            .unwrap();
        assert!(plain.runs[0].coverage.is_none());
    }

    #[test]
    fn all_engines_agree_on_final_memories() {
        let source = "mem inp[8]; mem out[8];
             void main() { int i; for (i = 0; i < 8; i = i + 1) { out[i] = inp[i] * 3 - 1; } }";
        let stim = Stimulus::from_values([5, 4, 3, 2, 1, 0, -1, -2]);
        let mut reports = Vec::new();
        for engine in Engine::ALL {
            let report = TestFlow::new("tri", source)
                .with_engine(engine)
                .stimulus("inp", stim.clone())
                .run()
                .unwrap();
            assert!(report.passed, "engine {engine}: {}", report.render());
            reports.push((engine, report));
        }
        let (_, reference) = &reports[0];
        for (engine, report) in &reports[1..] {
            assert_eq!(
                report.sim_mems, reference.sim_mems,
                "engine {engine} disagrees with the event kernel"
            );
            // The compiled engines count the cycle-0 reset step; the event
            // path derives cycles from the stop time. At most one apart.
            assert!(
                report.runs[0].cycles.abs_diff(reference.runs[0].cycles) <= 1,
                "engine {engine} cycles {} vs event {}",
                report.runs[0].cycles,
                reference.runs[0].cycles
            );
        }
    }

    #[test]
    fn compiled_engines_work_across_reconfigurations() {
        for engine in [Engine::Cycle, Engine::Level] {
            let report = TestFlow::new(
                "twophase",
                "mem a[8]; mem b[8];
                 void main() {
                     int i;
                     for (i = 0; i < 8; i = i + 1) { a[i] = i * 3; }
                     int j;
                     for (j = 0; j < 8; j = j + 1) { b[j] = a[j] + 1; }
                 }",
            )
            .with_partitions(2)
            .with_engine(engine)
            .run()
            .unwrap();
            assert!(report.passed, "engine {engine}: {}", report.render());
            assert_eq!(report.runs.len(), 2);
            assert_eq!(report.sim_mems["b"][7], Some(22));
        }
    }

    #[test]
    fn compiled_engines_reject_observability_features() {
        let base = || TestFlow::new("e", "mem out[1]; void main() { out[0] = 1; }");
        for engine in [Engine::Cycle, Engine::Level] {
            for flow in [
                base().with_engine(engine).with_trace(true),
                base().with_engine(engine).probe("done"),
                base().with_engine(engine).with_coverage(true),
            ] {
                let err = flow.run().unwrap_err();
                assert!(matches!(err, FlowError::Engine { .. }), "{err}");
            }
        }
    }

    #[test]
    fn engine_parses_and_displays() {
        for engine in Engine::ALL {
            assert_eq!(engine.to_string().parse::<Engine>().unwrap(), engine);
        }
        assert!("verilator".parse::<Engine>().is_err());
    }

    #[test]
    fn report_renders() {
        let report = TestFlow::new("r", "mem out[1]; void main() { out[0] = 1; }")
            .run()
            .unwrap();
        let text = report.render();
        assert!(text.contains("PASS"));
        assert!(text.contains("config"));
    }

    #[test]
    fn both_policies_pass_the_same_program() {
        for policy in [SchedulePolicy::OneOpPerState, SchedulePolicy::List] {
            let report = TestFlow::new(
                "p",
                "mem out[4]; void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = i + 7; } }",
            )
            .with_policy(policy)
            .run()
            .unwrap();
            assert!(report.passed, "policy {policy}: {}", report.render());
        }
    }

    #[test]
    fn uninitialized_input_matches_on_both_sides() {
        // Program copies an uninitialized word: both golden and simulation
        // fail identically (store of X) — so the flow reports the golden
        // failure as a test-case error.
        let err = TestFlow::new("x", "mem a[2]; mem out[2]; void main() { out[0] = a[0]; }")
            .run()
            .unwrap_err();
        assert!(matches!(err, FlowError::Golden(_)));
    }
}
