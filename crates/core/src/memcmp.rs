//! Result verification: comparing simulated memory contents against the
//! golden software execution ("a simple comparison of data content is
//! performed to verify results").

use crate::stimulus::MemImage;
use std::fmt;

/// One disagreement between golden and simulated memory contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Memory name.
    pub mem: String,
    /// Word address.
    pub addr: usize,
    /// Golden value (`None` = uninitialized).
    pub expected: Option<i64>,
    /// Simulated value.
    pub got: Option<i64>,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn word(w: Option<i64>) -> String {
            match w {
                Some(v) => v.to_string(),
                None => "X".to_string(),
            }
        }
        write!(
            f,
            "{}[{}]: expected {}, got {}",
            self.mem,
            self.addr,
            word(self.expected),
            word(self.got)
        )
    }
}

/// Compares two images of the same memory, returning every mismatching
/// address. Uninitialized (`X`) words must agree exactly: hardware and
/// golden reference share the "unwritten stays unknown" semantics.
///
/// # Panics
///
/// Panics when the image lengths differ — that is a harness bug, not a
/// test failure.
pub fn diff_images(mem: &str, expected: &MemImage, got: &MemImage) -> Vec<Mismatch> {
    assert_eq!(
        expected.len(),
        got.len(),
        "images of '{mem}' have different sizes"
    );
    expected
        .iter()
        .zip(got.iter())
        .enumerate()
        .filter(|(_, (e, g))| e != g)
        .map(|(addr, (e, g))| Mismatch {
            mem: mem.to_string(),
            addr,
            expected: *e,
            got: *g,
        })
        .collect()
}

/// Formats mismatches for a report, truncating long lists.
pub fn render_mismatches(mismatches: &[Mismatch], limit: usize) -> String {
    let mut out = String::new();
    for m in mismatches.iter().take(limit) {
        out.push_str(&format!("  {m}\n"));
    }
    if mismatches.len() > limit {
        out.push_str(&format!(
            "  … and {} more mismatches\n",
            mismatches.len() - limit
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_no_mismatches() {
        let a = vec![Some(1), None, Some(3)];
        assert!(diff_images("m", &a, &a.clone()).is_empty());
    }

    #[test]
    fn value_and_initialization_mismatches() {
        let expected = vec![Some(1), None, Some(3), None];
        let got = vec![Some(1), Some(9), None, None];
        let diffs = diff_images("m", &expected, &got);
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].addr, 1);
        assert_eq!(diffs[0].expected, None);
        assert_eq!(diffs[0].got, Some(9));
        assert_eq!(diffs[1].addr, 2);
        assert_eq!(diffs[0].to_string(), "m[1]: expected X, got 9");
    }

    #[test]
    #[should_panic(expected = "different sizes")]
    fn size_mismatch_is_a_harness_bug() {
        let _ = diff_images("m", &vec![None; 2], &vec![None; 3]);
    }

    #[test]
    fn rendering_truncates() {
        let expected = vec![Some(0); 10];
        let got = vec![Some(1); 10];
        let diffs = diff_images("m", &expected, &got);
        let text = render_mismatches(&diffs, 3);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("7 more"));
    }
}
