//! The sharded campaign runtime — the `fpgatest-checkpoint-v1` format.
//!
//! Fuzzing and fault-injection campaigns are embarrassingly parallel at
//! the unit level (a fuzz case is `(seed, index)`, a fault injection is
//! a site index), but the batch engine only parallelizes *within* one
//! schedule walk; everything above it was single-threaded. This module
//! supplies the shared machinery both campaign kinds run on:
//!
//! * [`run_sharded`] — a work-stealing worker pool over the index space
//!   `0..total`. The space is cut into chunks at **absolute** chunk
//!   boundaries (so chunk membership never depends on the shard count),
//!   the chunks are dealt to per-shard deques, and an idle shard steals
//!   from the richest peer's tail. Results come back over a channel and
//!   are merged on the calling thread **in strict index order**, so the
//!   merged output — logs, coverage, records, and the
//!   `fpgatest-events-v1` stream — is bit-identical at any shard count.
//! * [`RangeSet`] — sorted, coalesced half-open index ranges; the
//!   completed-work ledger a checkpoint persists.
//! * [`Checkpoint`] — the `fpgatest-checkpoint-v1` JSON document:
//!   campaign identity, the completed [`RangeSet`], and a
//!   campaign-specific `state` object (merged coverage, records, log).
//!   Saved atomically (write-temp-then-rename) with a one-deep
//!   generation history (generation N on disk, N-1 kept as `.prev`), and
//!   recovered by [`Checkpoint::load_salvage`], which tolerates trailing
//!   garbage and falls back to the `.tmp`/`.prev` generation — so a torn
//!   write costs at most one checkpoint interval, never the campaign.
//!
//! Only the contiguous in-order-merged prefix is ever checkpointed:
//! results a worker produced out of order are discarded on interrupt and
//! recomputed on `--resume`. That costs a little repeated work but keeps
//! the invariant that a checkpoint describes a prefix of the canonical
//! single-shard execution — which is what makes a resumed run's output
//! byte-identical to an uninterrupted one.

use crate::telemetry::Json;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};

/// Schema tag of the checkpoint document.
pub const CHECKPOINT_SCHEMA: &str = "fpgatest-checkpoint-v1";

/// A set of `u64` indices stored as sorted, coalesced half-open ranges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// Disjoint `[start, end)` ranges, ascending, never touching.
    ranges: Vec<(u64, u64)>,
}

impl RangeSet {
    /// The empty set.
    pub fn new() -> RangeSet {
        RangeSet::default()
    }

    /// The ranges, ascending and disjoint.
    pub fn ranges(&self) -> &[(u64, u64)] {
        &self.ranges
    }

    /// Inserts one index.
    pub fn insert(&mut self, index: u64) {
        self.insert_range(index, index + 1);
    }

    /// Inserts the half-open range `[start, end)` (no-op when empty),
    /// coalescing with every range it overlaps or touches.
    pub fn insert_range(&mut self, start: u64, end: u64) {
        if start >= end {
            return;
        }
        let mut merged = Vec::with_capacity(self.ranges.len() + 1);
        let mut new = (start, end);
        let mut placed = false;
        for &(s, e) in &self.ranges {
            if e < new.0 {
                // Strictly before, not touching.
                merged.push((s, e));
            } else if s > new.1 {
                // Strictly after, not touching.
                if !placed {
                    merged.push(new);
                    placed = true;
                }
                merged.push((s, e));
            } else {
                // Overlapping or adjacent: absorb.
                new.0 = new.0.min(s);
                new.1 = new.1.max(e);
            }
        }
        if !placed {
            merged.push(new);
        }
        self.ranges = merged;
    }

    /// Whether `index` is in the set.
    pub fn contains(&self, index: u64) -> bool {
        self.ranges
            .binary_search_by(|&(s, e)| {
                if index < s {
                    std::cmp::Ordering::Greater
                } else if index >= e {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Total number of indices covered.
    pub fn covered(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| e - s).sum()
    }

    /// Whether the set covers all of `[0, total)`.
    pub fn is_complete(&self, total: u64) -> bool {
        total == 0 || self.ranges == [(0, total)]
    }

    /// The maximal half-open ranges of `[0, total)` **not** in the set —
    /// the work a resumed campaign still owes.
    pub fn gaps(&self, total: u64) -> Vec<(u64, u64)> {
        let mut gaps = Vec::new();
        let mut cursor = 0u64;
        for &(s, e) in &self.ranges {
            if s.min(total) > cursor {
                gaps.push((cursor, s.min(total)));
            }
            cursor = cursor.max(e);
            if cursor >= total {
                break;
            }
        }
        if cursor < total {
            gaps.push((cursor, total));
        }
        gaps
    }

    /// Serializes as an array of `[start, end]` pairs.
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.ranges
                .iter()
                .map(|&(s, e)| Json::Arr(vec![Json::from(s), Json::from(e)]))
                .collect(),
        )
    }

    /// Parses the [`RangeSet::to_json`] form.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed pairs.
    pub fn from_json(json: &Json) -> Result<RangeSet, String> {
        let list = json.as_array().ok_or("ranges must be an array")?;
        let mut set = RangeSet::new();
        for pair in list {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or("each range is a [start, end] pair")?;
            let s = pair[0].as_u64().ok_or("range start must be an integer")?;
            let e = pair[1].as_u64().ok_or("range end must be an integer")?;
            set.insert_range(s, e);
        }
        Ok(set)
    }
}

/// One `fpgatest-checkpoint-v1` document: which campaign this is, how
/// much of it is merged, and the campaign-specific merged state.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Campaign kind: `faults` or `fuzz`.
    pub kind: String,
    /// Campaign identity key (design name, `seedN`); a resume refuses a
    /// checkpoint whose key does not match the invocation.
    pub key: String,
    /// Planned number of units.
    pub total: u64,
    /// Units merged so far — always a prefix `[0, k)` as written by
    /// [`run_sharded`], but stored as a general [`RangeSet`].
    pub completed: RangeSet,
    /// Campaign-specific merged state (records, coverage, log text).
    pub state: Json,
}

impl Checkpoint {
    /// Serializes the document.
    pub fn to_json(&self) -> Json {
        let mut json = Json::obj([
            ("schema", Json::from(CHECKPOINT_SCHEMA)),
            ("kind", Json::from(self.kind.as_str())),
            ("key", Json::from(self.key.as_str())),
            ("total", Json::from(self.total)),
            ("completed", self.completed.to_json()),
            ("state", self.state.clone()),
        ]);
        json.sort_keys();
        json
    }

    /// Parses a [`Checkpoint::to_json`] document.
    ///
    /// # Errors
    ///
    /// Returns a message for a wrong schema tag or missing fields.
    pub fn from_json(json: &Json) -> Result<Checkpoint, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(CHECKPOINT_SCHEMA) => {}
            Some(other) => return Err(format!("unexpected checkpoint schema '{other}'")),
            None => return Err("missing 'schema'".to_string()),
        }
        Ok(Checkpoint {
            kind: json
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("missing 'kind'")?
                .to_string(),
            key: json
                .get("key")
                .and_then(Json::as_str)
                .ok_or("missing 'key'")?
                .to_string(),
            total: json.get("total").and_then(Json::as_u64).ok_or("missing 'total'")?,
            completed: RangeSet::from_json(json.get("completed").ok_or("missing 'completed'")?)?,
            state: json.get("state").cloned().unwrap_or(Json::Null),
        })
    }

    /// Writes the checkpoint atomically: serialize to `<path>.tmp`,
    /// demote the current generation to `<path>.prev`, then rename the
    /// temp file over `path` ("write N, keep N-1"). Each rename is
    /// atomic, so a kill at any instant leaves at least one complete
    /// generation on disk for [`Checkpoint::load_salvage`]: the old file,
    /// the new file, or a finished `.tmp` alongside the `.prev`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json().emit_pretty())?;
        if path.exists() {
            let _ = std::fs::rename(path, path.with_extension("prev"));
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads and validates a checkpoint file, strictly: any I/O, JSON,
    /// or schema problem is an error. Resumption paths use
    /// [`Checkpoint::load_salvage`] instead, which degrades gracefully.
    ///
    /// # Errors
    ///
    /// Returns a message for I/O, JSON, or schema problems.
    pub fn load(path: &Path) -> Result<Checkpoint, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let json =
            Json::parse(&text).map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
        Checkpoint::from_json(&json).map_err(|e| format!("checkpoint {}: {e}", path.display()))
    }

    /// Loads a checkpoint, salvaging what it can from torn writes.
    ///
    /// Tried in order, best surviving generation wins (most covered
    /// units; ties go to the earlier candidate):
    ///
    /// 1. `path` parsed strictly — the normal case, short-circuits;
    /// 2. `path` parsed tolerantly (first complete JSON value, trailing
    ///    garbage ignored);
    /// 3. `<path>.tmp` — a save killed between write and rename leaves a
    ///    complete *newer* generation here;
    /// 4. `<path>.prev` — the N-1 generation [`Checkpoint::save`] keeps.
    ///
    /// A truncated primary therefore costs at most one checkpoint
    /// interval of repeated work, never the whole campaign. The caller
    /// still owns identity validation (kind/key/total); salvage only
    /// finds a structurally sound document.
    ///
    /// # Errors
    ///
    /// Returns the strict-load error for `path`, annotated with the
    /// failed fallbacks, when no generation yields a valid document.
    pub fn load_salvage(path: &Path) -> Result<SalvagedCheckpoint, String> {
        let primary_err = match Checkpoint::load(path) {
            Ok(checkpoint) => {
                return Ok(SalvagedCheckpoint {
                    checkpoint,
                    source: SalvageSource::Primary,
                    note: None,
                })
            }
            Err(e) => e,
        };
        let mut candidates: Vec<(Checkpoint, SalvageSource, String)> = Vec::new();
        if let Some(checkpoint) = load_tolerant(path) {
            let note = format!(
                "salvaged {} ({} units) ignoring trailing garbage",
                path.display(),
                checkpoint.completed.covered()
            );
            candidates.push((checkpoint, SalvageSource::TrailingGarbage, note));
        }
        for (extension, source) in [("tmp", SalvageSource::Tmp), ("prev", SalvageSource::Previous)]
        {
            let alt = path.with_extension(extension);
            let loaded = Checkpoint::load(&alt).ok().or_else(|| load_tolerant(&alt));
            if let Some(checkpoint) = loaded {
                let note = format!(
                    "salvaged generation {} ({} units)",
                    alt.display(),
                    checkpoint.completed.covered()
                );
                candidates.push((checkpoint, source, note));
            }
        }
        let mut best: Option<(Checkpoint, SalvageSource, String)> = None;
        for candidate in candidates {
            let better = best
                .as_ref()
                .is_none_or(|(b, _, _)| candidate.0.completed.covered() > b.completed.covered());
            if better {
                best = Some(candidate);
            }
        }
        match best {
            Some((checkpoint, source, note)) => Ok(SalvagedCheckpoint {
                checkpoint,
                source,
                note: Some(note),
            }),
            None => Err(format!("{primary_err}; no salvageable generation found")),
        }
    }
}

/// Which generation [`Checkpoint::load_salvage`] recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SalvageSource {
    /// The primary file, intact — nothing was salvaged.
    Primary,
    /// The primary file, with trailing garbage after the document
    /// ignored.
    TrailingGarbage,
    /// The in-flight `.tmp` file (a save was killed between write and
    /// rename).
    Tmp,
    /// The previous generation kept as `.prev`.
    Previous,
}

/// A checkpoint recovered by [`Checkpoint::load_salvage`], with
/// provenance for operator-facing logs.
#[derive(Debug, Clone)]
pub struct SalvagedCheckpoint {
    /// The recovered document.
    pub checkpoint: Checkpoint,
    /// Which generation it came from.
    pub source: SalvageSource,
    /// Human-readable salvage description; `None` when the primary file
    /// was intact.
    pub note: Option<String>,
}

/// Best-effort tolerant load: first complete JSON value of the file
/// (invalid UTF-8 replaced, trailing bytes ignored), if it is a valid
/// checkpoint document.
fn load_tolerant(path: &Path) -> Option<Checkpoint> {
    let bytes = std::fs::read(path).ok()?;
    let text = String::from_utf8_lossy(&bytes);
    let (json, _consumed) = Json::parse_prefix(&text).ok()?;
    Checkpoint::from_json(&json).ok()
}

/// Knobs for [`run_sharded`].
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Worker-thread count (clamped to at least 1).
    pub shards: usize,
    /// Chunk size in units; `0` picks a default. Chunks are cut at
    /// absolute index boundaries (`k*chunk`), so chunk membership — and
    /// with it anything chunk-scoped, like batch-lane packing — is
    /// independent of the shard count and of where a resume started.
    pub chunk: u64,
    /// Merged units between checkpoint callbacks (`0` = only at the
    /// end / on interrupt).
    pub checkpoint_every: u64,
    /// Cooperative stop flag: set it and workers finish their current
    /// chunk and exit; the merge keeps only the contiguous prefix.
    pub stop: Option<Arc<AtomicBool>>,
    /// Also stop on the process-wide SIGINT flag (see
    /// [`install_sigint`]).
    pub sigint: bool,
}

impl Default for ShardOptions {
    fn default() -> Self {
        ShardOptions {
            shards: 1,
            chunk: 0,
            checkpoint_every: 0,
            stop: None,
            sigint: false,
        }
    }
}

/// What [`run_sharded`] did.
#[derive(Debug)]
pub struct ShardOutcome {
    /// Whether the run stopped before merging everything (stop flag or
    /// SIGINT).
    pub interrupted: bool,
    /// Everything merged (including the pre-completed `skip` set);
    /// always a prefix `[0, k)` of the index space.
    pub completed: RangeSet,
}

/// Default chunk size when [`ShardOptions::chunk`] is `0`. Deliberately
/// shard-count-independent: determinism of chunk-scoped behaviour (batch
/// lane packing) must not depend on `--shards`.
const DEFAULT_CHUNK: u64 = 16;

/// Runs `worker` over every index of `[0, total)` not already in
/// `skip`, across [`ShardOptions::shards`] work-stealing worker
/// threads, merging results on the calling thread in ascending index
/// order.
///
/// * `worker(start, end)` computes the results of the chunk
///   `[start, end)` (every index pending) and returns exactly
///   `end - start` results. It runs on a worker thread and must be
///   deterministic per index for the merged output to be
///   shard-count-independent.
/// * `merge(index, result)` is called on the calling thread, in
///   strictly ascending index order over the pending indices.
/// * `checkpoint(&completed)` is called on the calling thread after
///   every [`ShardOptions::checkpoint_every`] merged units, and once
///   more before returning (when interrupted or when anything merged).
///
/// On interrupt only the contiguous in-order prefix is merged; buffered
/// out-of-order results are discarded (a resume recomputes them).
pub fn run_sharded<R, W, M, C>(
    total: u64,
    skip: &RangeSet,
    options: &ShardOptions,
    worker: W,
    mut merge: M,
    mut checkpoint: C,
) -> ShardOutcome
where
    R: Send,
    W: Fn(u64, u64) -> Vec<R> + Sync,
    M: FnMut(u64, R),
    C: FnMut(&RangeSet),
{
    let chunk = if options.chunk == 0 { DEFAULT_CHUNK } else { options.chunk };
    let shards = options.shards.max(1);
    let stopped = || {
        options
            .stop
            .as_ref()
            .is_some_and(|s| s.load(Ordering::SeqCst))
            || (options.sigint && sigint_pending())
    };

    // Cut the pending gaps into chunks at absolute `k*chunk` boundaries.
    let mut chunks: Vec<(u64, u64)> = Vec::new();
    for (start, end) in skip.gaps(total) {
        let mut cursor = start;
        while cursor < end {
            let boundary = ((cursor / chunk) + 1) * chunk;
            let stop_at = boundary.min(end);
            chunks.push((cursor, stop_at));
            cursor = stop_at;
        }
    }

    let mut completed = skip.clone();
    // Normalize: completed must describe a prefix for resume semantics;
    // callers hand us checkpoint sets which are prefixes by
    // construction, but a hand-edited file must not break merging.
    let expected: Vec<u64> = chunks.iter().map(|&(s, _)| s).collect();

    // Deal chunks to per-shard deques in contiguous blocks, so shard 0
    // starts at the front of the index space (merging can start
    // immediately) and steals move whole tail chunks.
    let deques: Vec<Mutex<VecDeque<(u64, u64)>>> = {
        let per = chunks.len().div_ceil(shards).max(1);
        let mut deques: Vec<Mutex<VecDeque<(u64, u64)>>> = Vec::new();
        for block in chunks.chunks(per) {
            deques.push(Mutex::new(block.iter().copied().collect()));
        }
        while deques.len() < shards {
            deques.push(Mutex::new(VecDeque::new()));
        }
        deques
    };

    let (tx, rx) = mpsc::channel::<(u64, Vec<R>)>();
    let mut merged_since_checkpoint = 0u64;
    let mut any_merged = false;
    let mut interrupted = false;

    std::thread::scope(|scope| {
        for shard in 0..shards {
            let tx = tx.clone();
            let deques = &deques;
            let worker = &worker;
            let stopped = &stopped;
            scope.spawn(move || loop {
                if stopped() {
                    return;
                }
                // Own queue first (front: lowest indices, the merge's
                // critical path), then steal the richest peer's tail.
                let mut job = deques[shard]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .pop_front();
                if job.is_none() {
                    let richest = (0..deques.len()).filter(|&i| i != shard).max_by_key(|&i| {
                        deques[i]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .len()
                    });
                    if let Some(victim) = richest {
                        job = deques[victim]
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .pop_back();
                    }
                }
                let Some((start, end)) = job else { return };
                let results = worker(start, end);
                debug_assert_eq!(results.len() as u64, end - start);
                if tx.send((start, results)).is_err() {
                    return;
                }
            });
        }
        drop(tx);

        // In-order merge: buffer out-of-order chunks, advance along the
        // expected chunk-start sequence.
        let mut buffer: BTreeMap<u64, Vec<R>> = BTreeMap::new();
        let mut next = 0usize;
        while let Ok((start, results)) = rx.recv() {
            buffer.insert(start, results);
            while next < expected.len() {
                let Some(results) = buffer.remove(&expected[next]) else {
                    break;
                };
                let start = expected[next];
                let len = results.len() as u64;
                for (offset, result) in results.into_iter().enumerate() {
                    merge(start + offset as u64, result);
                }
                completed.insert_range(start, start + len);
                merged_since_checkpoint += len;
                any_merged = true;
                next += 1;
                if options.checkpoint_every > 0
                    && merged_since_checkpoint >= options.checkpoint_every
                {
                    checkpoint(&completed);
                    merged_since_checkpoint = 0;
                }
            }
        }
        interrupted = next < expected.len();
    });

    if (interrupted || any_merged) && merged_since_checkpoint > 0 {
        checkpoint(&completed);
    }
    ShardOutcome {
        interrupted,
        completed,
    }
}

static SIGINT_FLAG: AtomicBool = AtomicBool::new(false);

extern "C" fn campaign_on_sigint(_signum: i32) {
    SIGINT_FLAG.store(true, Ordering::SeqCst);
}

/// Installs a SIGINT handler that sets the process-wide campaign stop
/// flag (checked when [`ShardOptions::sigint`] is on). First Ctrl-C
/// stops workers cooperatively so the campaign can checkpoint and exit
/// 130; the handler stays installed, so a second Ctrl-C also just sets
/// the (already set) flag rather than killing the process mid-save.
#[cfg(unix)]
pub fn install_sigint() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, campaign_on_sigint as *const () as usize);
    }
}

/// No-op off Unix.
#[cfg(not(unix))]
pub fn install_sigint() {}

/// Whether SIGINT fired since [`install_sigint`].
pub fn sigint_pending() -> bool {
    SIGINT_FLAG.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rangeset_coalesces_and_queries() {
        let mut set = RangeSet::new();
        set.insert_range(10, 20);
        set.insert_range(0, 5);
        assert_eq!(set.ranges(), &[(0, 5), (10, 20)]);
        set.insert_range(5, 10); // bridges the gap
        assert_eq!(set.ranges(), &[(0, 20)]);
        set.insert(25);
        set.insert(24);
        assert_eq!(set.ranges(), &[(0, 20), (24, 26)]);
        assert!(set.contains(0) && set.contains(19) && set.contains(25));
        assert!(!set.contains(20) && !set.contains(23) && !set.contains(26));
        assert_eq!(set.covered(), 22);
        assert_eq!(set.gaps(30), vec![(20, 24), (26, 30)]);
        assert!(!set.is_complete(30));
        set.insert_range(0, 30);
        assert!(set.is_complete(30));
        assert_eq!(set.gaps(30), Vec::<(u64, u64)>::new());
    }

    #[test]
    fn rangeset_insert_overlapping_and_contained() {
        let mut set = RangeSet::new();
        set.insert_range(5, 15);
        set.insert_range(0, 20); // superset swallows
        assert_eq!(set.ranges(), &[(0, 20)]);
        set.insert_range(3, 7); // contained: no-op
        assert_eq!(set.ranges(), &[(0, 20)]);
        set.insert_range(30, 40);
        set.insert_range(18, 32); // overlaps both
        assert_eq!(set.ranges(), &[(0, 40)]);
    }

    #[test]
    fn rangeset_round_trips_through_json() {
        let mut set = RangeSet::new();
        set.insert_range(0, 7);
        set.insert_range(64, 128);
        let back = RangeSet::from_json(&set.to_json()).unwrap();
        assert_eq!(back, set);
        assert!(RangeSet::from_json(&Json::from("nope")).is_err());
    }

    #[test]
    fn checkpoint_round_trips_and_saves_atomically() {
        let mut completed = RangeSet::new();
        completed.insert_range(0, 42);
        let checkpoint = Checkpoint {
            kind: "faults".to_string(),
            key: "fdct1".to_string(),
            total: 100,
            completed,
            state: Json::obj([("records", Json::Arr(vec![]))]),
        };
        let back = Checkpoint::from_json(&checkpoint.to_json()).unwrap();
        assert_eq!(back.kind, "faults");
        assert_eq!(back.key, "fdct1");
        assert_eq!(back.total, 100);
        assert_eq!(back.completed.ranges(), &[(0, 42)]);

        let dir = std::env::temp_dir().join("fpgatest_checkpoint_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign.checkpoint");
        checkpoint.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.total, 100);
        assert!(
            !path.with_extension("tmp").exists(),
            "temp file renamed away"
        );
        // Wrong schema is rejected.
        std::fs::write(&path, "{\"schema\":\"nope\"}").unwrap();
        assert!(Checkpoint::load(&path).is_err());
    }

    fn checkpoint_covering(units: u64) -> Checkpoint {
        let mut completed = RangeSet::new();
        completed.insert_range(0, units);
        Checkpoint {
            kind: "faults".to_string(),
            key: "fdct1".to_string(),
            total: 100,
            completed,
            state: Json::obj([("records", Json::Arr(vec![Json::from(units)]))]),
        }
    }

    fn fresh_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn save_keeps_the_previous_generation() {
        let dir = fresh_dir("fpgatest_checkpoint_generations");
        let path = dir.join("campaign.checkpoint");
        checkpoint_covering(10).save(&path).unwrap();
        assert!(!path.with_extension("prev").exists(), "first save has no N-1");
        checkpoint_covering(20).save(&path).unwrap();
        assert!(!path.with_extension("tmp").exists(), "temp renamed away");
        let current = Checkpoint::load(&path).unwrap();
        let previous = Checkpoint::load(&path.with_extension("prev")).unwrap();
        assert_eq!(current.completed.covered(), 20);
        assert_eq!(previous.completed.covered(), 10, ".prev holds generation N-1");
    }

    #[test]
    fn salvage_ignores_trailing_garbage() {
        let dir = fresh_dir("fpgatest_checkpoint_salvage_garbage");
        let path = dir.join("campaign.checkpoint");
        checkpoint_covering(42).save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"\x00\xffgarbage after the document");
        std::fs::write(&path, &bytes).unwrap();
        assert!(Checkpoint::load(&path).is_err(), "strict load refuses");
        let salvaged = Checkpoint::load_salvage(&path).unwrap();
        assert_eq!(salvaged.source, SalvageSource::TrailingGarbage);
        assert_eq!(salvaged.checkpoint.completed.covered(), 42);
        assert!(salvaged.note.is_some());
    }

    #[test]
    fn salvage_falls_back_to_tmp_then_prev() {
        let dir = fresh_dir("fpgatest_checkpoint_salvage_fallback");
        let path = dir.join("campaign.checkpoint");
        // A save killed between write and rename: torn primary, complete
        // newer .tmp, intact .prev.
        checkpoint_covering(10).save(&path).unwrap();
        std::fs::rename(&path, path.with_extension("prev")).unwrap();
        std::fs::write(
            path.with_extension("tmp"),
            checkpoint_covering(30).to_json().emit_pretty(),
        )
        .unwrap();
        std::fs::write(&path, "{\"schema\": \"fpgatest-checkp").unwrap();
        let salvaged = Checkpoint::load_salvage(&path).unwrap();
        assert_eq!(salvaged.source, SalvageSource::Tmp);
        assert_eq!(salvaged.checkpoint.completed.covered(), 30);
        // Without the .tmp, the previous generation wins.
        std::fs::remove_file(path.with_extension("tmp")).unwrap();
        let salvaged = Checkpoint::load_salvage(&path).unwrap();
        assert_eq!(salvaged.source, SalvageSource::Previous);
        assert_eq!(salvaged.checkpoint.completed.covered(), 10);
        // With nothing valid anywhere, salvage reports the strict error.
        std::fs::remove_file(path.with_extension("prev")).unwrap();
        let err = Checkpoint::load_salvage(&path).unwrap_err();
        assert!(err.contains("no salvageable generation"), "{err}");
    }

    #[test]
    fn salvage_survives_truncation_at_every_byte() {
        let dir = fresh_dir("fpgatest_checkpoint_salvage_truncation");
        let path = dir.join("campaign.checkpoint");
        checkpoint_covering(10).save(&path).unwrap();
        checkpoint_covering(20).save(&path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let salvaged = Checkpoint::load_salvage(&path)
                .unwrap_or_else(|e| panic!("cut at byte {cut}: {e}"));
            let covered = salvaged.checkpoint.completed.covered();
            // Either the full newest generation (only possible when the
            // document survived the cut) or the intact N-1 fallback —
            // never a refusal, never a bogus document.
            assert!(
                covered == 20 || covered == 10,
                "cut at byte {cut} recovered {covered} units"
            );
            assert!(
                salvaged.checkpoint.completed.ranges().len() == 1
                    && salvaged.checkpoint.completed.ranges()[0].0 == 0,
                "recovered set is a prefix"
            );
            if covered == 10 {
                assert_eq!(salvaged.source, SalvageSource::Previous, "cut {cut}");
            }
        }
    }

    /// The worker squares indices; the merged sequence must be the
    /// ascending squares regardless of shard count or chunk size.
    fn collect_sharded(total: u64, skip: &RangeSet, shards: usize, chunk: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let outcome = run_sharded(
            total,
            skip,
            &ShardOptions {
                shards,
                chunk,
                ..ShardOptions::default()
            },
            |start, end| (start..end).map(|i| i * i).collect::<Vec<u64>>(),
            |index, value| out.push((index, value)),
            |_| {},
        );
        assert!(!outcome.interrupted);
        assert!(outcome.completed.is_complete(total));
        out
    }

    #[test]
    fn sharded_merge_is_index_ordered_at_any_shard_count() {
        let reference = collect_sharded(103, &RangeSet::new(), 1, 7);
        for shards in [2, 3, 7, 16] {
            for chunk in [1, 5, 64] {
                assert_eq!(
                    collect_sharded(103, &RangeSet::new(), shards, chunk),
                    reference,
                    "shards={shards} chunk={chunk}"
                );
            }
        }
        let indices: Vec<u64> = reference.iter().map(|&(i, _)| i).collect();
        assert_eq!(indices, (0..103).collect::<Vec<u64>>());
    }

    #[test]
    fn sharded_run_skips_completed_ranges() {
        let mut skip = RangeSet::new();
        skip.insert_range(0, 10);
        skip.insert_range(20, 25);
        let merged = collect_sharded(30, &skip, 3, 4);
        let indices: Vec<u64> = merged.iter().map(|&(i, _)| i).collect();
        let expected: Vec<u64> = (10..20).chain(25..30).collect();
        assert_eq!(indices, expected);
    }

    #[test]
    fn stop_flag_keeps_only_the_contiguous_prefix() {
        let stop = Arc::new(AtomicBool::new(false));
        let mut merged = Vec::new();
        let mut checkpoints = 0usize;
        let outcome = run_sharded(
            1000,
            &RangeSet::new(),
            &ShardOptions {
                shards: 2,
                chunk: 4,
                checkpoint_every: 8,
                stop: Some(stop.clone()),
                sigint: false,
            },
            |start, end| {
                if start >= 100 {
                    stop.store(true, Ordering::SeqCst);
                }
                (start..end).collect::<Vec<u64>>()
            },
            |index, value| {
                assert_eq!(index, value);
                merged.push(index);
            },
            |completed| {
                checkpoints += 1;
                // Every checkpoint set is a prefix.
                assert_eq!(completed.ranges().len(), 1);
                assert_eq!(completed.ranges()[0].0, 0);
            },
        );
        assert!(outcome.interrupted);
        // Merged exactly [0, k) for some k (possibly 0 when the flag won
        // the race before the first chunk).
        let k = merged.len() as u64;
        assert!(k < 1000, "the stop flag cut the campaign short");
        assert_eq!(merged, (0..k).collect::<Vec<u64>>());
        assert_eq!(outcome.completed.gaps(1000), vec![(k, 1000)]);
        if k > 0 {
            assert!(checkpoints >= 1, "final checkpoint fires on interrupt");
        }
    }

    #[test]
    fn resume_completes_what_a_stopped_run_left() {
        // Phase 1: stop after ~half.
        let stop = Arc::new(AtomicBool::new(false));
        let mut first = Vec::new();
        let stop_trigger = stop.clone();
        let outcome = run_sharded(
            200,
            &RangeSet::new(),
            &ShardOptions {
                shards: 3,
                chunk: 8,
                stop: Some(stop),
                ..ShardOptions::default()
            },
            move |start, end| {
                if start >= 64 {
                    stop_trigger.store(true, Ordering::SeqCst);
                }
                (start..end).map(|i| i + 1).collect::<Vec<u64>>()
            },
            |index, value| first.push((index, value)),
            |_| {},
        );
        // Whether (and where) the stop landed depends on scheduling; the
        // property under test is that resume completes the remainder and
        // the concatenation equals the uninterrupted sequence.
        // Phase 2: resume from the completed prefix.
        let mut second = Vec::new();
        let resumed = run_sharded(
            200,
            &outcome.completed,
            &ShardOptions {
                shards: 3,
                chunk: 8,
                ..ShardOptions::default()
            },
            |start, end| (start..end).map(|i| i + 1).collect::<Vec<u64>>(),
            |index, value| second.push((index, value)),
            |_| {},
        );
        assert!(!resumed.interrupted);
        assert!(resumed.completed.is_complete(200));
        let mut all = first;
        all.extend(second);
        let expected: Vec<(u64, u64)> = (0..200).map(|i| (i, i + 1)).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn checkpoint_callback_fires_on_interval() {
        let mut checkpoints: Vec<u64> = Vec::new();
        run_sharded(
            100,
            &RangeSet::new(),
            &ShardOptions {
                shards: 4,
                chunk: 5,
                checkpoint_every: 20,
                ..ShardOptions::default()
            },
            |start, end| (start..end).collect::<Vec<u64>>(),
            |_, _| {},
            |completed| checkpoints.push(completed.covered()),
        );
        assert!(!checkpoints.is_empty());
        assert!(
            checkpoints.windows(2).all(|w| w[0] < w[1]),
            "checkpoint coverage grows monotonically: {checkpoints:?}"
        );
        assert_eq!(*checkpoints.last().unwrap(), 100);
    }
}
