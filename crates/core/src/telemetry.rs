//! Flow observability: hierarchical tracing spans, a structured JSON
//! metrics report, and baseline timing comparison.
//!
//! The paper's infrastructure reports Table I by hand; this module makes
//! the same numbers (plus kernel counters from [`eventsim`]) machine
//! readable. Three pieces:
//!
//! * [`Json`] — a zero-dependency JSON value with an emitter and parser,
//!   so the report format needs no external crates.
//! * [`Recorder`] — hierarchical wall-clock spans. The flow opens one
//!   span per pipeline stage (`flow.parse`, `flow.lower`,
//!   `flow.transform`, `flow.elaborate`, `flow.simulate.<config>`,
//!   `flow.compare`); suites wrap each case in `case.<name>`.
//! * [`suite_json`] / [`render_baseline_deltas`] — the
//!   `fpgatest-metrics-v1` report (suite verdicts, per-design Table I
//!   fields, kernel stats, hot-component histogram, span tree) and the
//!   timing diff printed by `--baseline`.

use crate::flow::{ConfigProfile, TestReport};
use crate::suite::{CaseResult, SuiteReport};
use std::fmt;
use std::time::Instant;

/// Identifies the report layout; bump when fields change incompatibly.
pub const SCHEMA: &str = "fpgatest-metrics-v1";

// ---------------------------------------------------------------------
// JSON value
// ---------------------------------------------------------------------

/// A JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Recursively sorts every object's members by key (stable, so
    /// duplicate keys keep their relative order). Emitted reports become
    /// byte-stable regardless of construction order — the `BENCH_*.json`
    /// files are canonicalized this way so runs diff cleanly.
    pub fn sort_keys(&mut self) {
        match self {
            Json::Obj(members) => {
                for (_, value) in members.iter_mut() {
                    value.sort_keys();
                }
                members.sort_by(|a, b| a.0.cmp(&b.0));
            }
            Json::Arr(items) => {
                for value in items {
                    value.sort_keys();
                }
            }
            _ => {}
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering (two spaces per level).
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(n) => (
                "\n",
                " ".repeat(n * level),
                " ".repeat(n * (level + 1)),
            ),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonParseError {
                offset: pos,
                message: "trailing characters".into(),
            });
        }
        Ok(value)
    }

    /// Parses the first complete JSON value of `text` and returns it
    /// with the byte offset one past its end, ignoring whatever follows.
    /// This is the trailing-garbage-tolerant entry point checkpoint
    /// salvage uses: a torn write that appended junk after a complete
    /// document still yields the document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] when no complete value starts the text.
    pub fn parse_prefix(text: &str) -> Result<(Json, usize), JsonParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        Ok((value, pos))
    }
}

fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

fn err(offset: usize, message: impl Into<String>) -> JsonParseError {
    JsonParseError {
        offset,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonParseError> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected '{word}'")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so
                // boundaries are valid).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

// ---------------------------------------------------------------------
// Span recorder
// ---------------------------------------------------------------------

/// Handle to a span opened by [`Recorder::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One recorded span.
#[derive(Debug)]
pub struct Span {
    /// Span name (`flow.parse`, `flow.simulate.fdct1`, …).
    pub name: String,
    /// Seconds from recorder creation to span start.
    pub start_seconds: f64,
    /// Span duration in seconds (0 until ended).
    pub wall_seconds: f64,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Attached attributes, in insertion order.
    pub attrs: Vec<(String, Json)>,
    parent: Option<usize>,
    children: Vec<usize>,
    started: Instant,
    closed: bool,
}

/// Hierarchical wall-clock span recorder.
///
/// Spans nest by call order: a span started while another is open becomes
/// its child. The recorder serializes to a span-tree [`Json`] forest and
/// to a flat JSONL trace log.
///
/// ```
/// use fpgatest::telemetry::Recorder;
/// let mut rec = Recorder::new();
/// let outer = rec.start("flow.parse");
/// rec.attr(outer, "lines", 12u64);
/// rec.end(outer);
/// assert_eq!(rec.span_names(), ["flow.parse"]);
/// ```
#[derive(Debug)]
pub struct Recorder {
    epoch: Instant,
    spans: Vec<Span>,
    stack: Vec<usize>,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder; its clock starts now.
    pub fn new() -> Self {
        Recorder {
            epoch: Instant::now(),
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Opens a span as a child of the innermost open span.
    pub fn start(&mut self, name: impl Into<String>) -> SpanId {
        let index = self.spans.len();
        let parent = self.stack.last().copied();
        let now = Instant::now();
        self.spans.push(Span {
            name: name.into(),
            start_seconds: now.duration_since(self.epoch).as_secs_f64(),
            wall_seconds: 0.0,
            depth: self.stack.len(),
            attrs: Vec::new(),
            parent,
            children: Vec::new(),
            started: now,
            closed: false,
        });
        if let Some(p) = parent {
            self.spans[p].children.push(index);
        }
        self.stack.push(index);
        SpanId(index)
    }

    /// Attaches an attribute to a span (open or closed).
    pub fn attr(&mut self, id: SpanId, key: impl Into<String>, value: impl Into<Json>) {
        self.spans[id.0].attrs.push((key.into(), value.into()));
    }

    /// Closes a span, recording its duration. Any children still open are
    /// closed with it (a span cannot outlive its parent).
    pub fn end(&mut self, id: SpanId) {
        let Some(position) = self.stack.iter().rposition(|&i| i == id.0) else {
            return; // already ended
        };
        for &open in self.stack[position..].iter().rev() {
            let span = &mut self.spans[open];
            if !span.closed {
                span.closed = true;
                span.wall_seconds = span.started.elapsed().as_secs_f64();
            }
        }
        self.stack.truncate(position);
    }

    /// All spans in start order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The first span with the given name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Every span name, in start order.
    pub fn span_names(&self) -> Vec<&str> {
        self.spans.iter().map(|s| s.name.as_str()).collect()
    }

    /// Merges another recorder's spans into this one, preserving their
    /// tree shape. The absorbed spans keep their relative timing but are
    /// rebased onto this recorder's epoch, so a span forest built by
    /// worker threads (each with its own recorder) reads as one coherent
    /// timeline. Absorbed roots stay roots — they do not become children
    /// of any span currently open here.
    pub fn absorb(&mut self, other: Recorder) {
        let base = self.spans.len();
        let offset = other
            .epoch
            .saturating_duration_since(self.epoch)
            .as_secs_f64();
        for mut span in other.spans {
            span.start_seconds += offset;
            span.parent = span.parent.map(|p| p + base);
            for child in &mut span.children {
                *child += base;
            }
            if !span.closed {
                span.closed = true;
                span.wall_seconds = span.started.elapsed().as_secs_f64();
            }
            self.spans.push(span);
        }
    }

    /// The span forest as JSON (one object per root, children nested).
    pub fn to_json(&self) -> Json {
        let roots: Vec<usize> = (0..self.spans.len())
            .filter(|&i| self.spans[i].parent.is_none())
            .collect();
        Json::Arr(roots.iter().map(|&i| self.span_json(i)).collect())
    }

    fn span_json(&self, index: usize) -> Json {
        let span = &self.spans[index];
        let mut members = vec![
            ("name".to_string(), Json::Str(span.name.clone())),
            ("start_seconds".to_string(), Json::Num(span.start_seconds)),
            ("wall_seconds".to_string(), Json::Num(span.wall_seconds)),
        ];
        if !span.attrs.is_empty() {
            members.push(("attrs".to_string(), Json::Obj(span.attrs.clone())));
        }
        if !span.children.is_empty() {
            members.push((
                "children".to_string(),
                Json::Arr(span.children.iter().map(|&c| self.span_json(c)).collect()),
            ));
        }
        Json::Obj(members)
    }

    /// The flat JSONL trace log: one `{"type":"span",...}` object per
    /// line, in start order, with depth instead of nesting.
    pub fn to_jsonl(&self) -> String {
        let mut out = Vec::new();
        self.write_jsonl(&mut out)
            .expect("writing JSONL to a Vec cannot fail");
        String::from_utf8(out).expect("JSONL output is UTF-8")
    }

    /// Streams the JSONL trace log into `out`, one span per line.
    ///
    /// Identical output to [`Recorder::to_jsonl`]; wrap `out` in a
    /// [`std::io::BufWriter`] when targeting a file so long traces go
    /// out line by line instead of through one in-memory string.
    pub fn write_jsonl<W: std::io::Write>(&self, out: &mut W) -> std::io::Result<()> {
        for span in &self.spans {
            let mut members = vec![
                ("type".to_string(), Json::Str("span".into())),
                ("name".to_string(), Json::Str(span.name.clone())),
                ("depth".to_string(), Json::Num(span.depth as f64)),
                ("start_seconds".to_string(), Json::Num(span.start_seconds)),
                ("wall_seconds".to_string(), Json::Num(span.wall_seconds)),
            ];
            if !span.attrs.is_empty() {
                members.push(("attrs".to_string(), Json::Obj(span.attrs.clone())));
            }
            writeln!(out, "{}", Json::Obj(members).emit())?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Metrics report
// ---------------------------------------------------------------------

/// The per-design report entry (Table I fields + kernel stats). `name`
/// is the case name, which may differ from the design name when one
/// design is run under several labels (e.g. a scaling sweep).
pub fn design_json(name: &str, result: &CaseResult) -> Json {
    match result {
        CaseResult::Errored(e) => Json::obj([
            ("design", name.into()),
            ("status", "error".into()),
            ("error", e.to_string().into()),
        ]),
        CaseResult::Crashed(message) => Json::obj([
            ("design", name.into()),
            ("status", "crash".into()),
            ("panic", message.as_str().into()),
        ]),
        CaseResult::TimedOut { reason } => Json::obj([
            ("design", name.into()),
            ("status", "timeout".into()),
            ("timeout", reason.as_str().into()),
        ]),
        CaseResult::Finished(report) => finished_design_json(name, report),
    }
}

fn finished_design_json(name: &str, report: &TestReport) -> Json {
    let metrics = &report.metrics;
    let configs: Vec<Json> = metrics
        .configs
        .iter()
        .map(|config| {
            let mut members = vec![
                ("name".to_string(), Json::Str(config.name.clone())),
                ("lo_xml_fsm".to_string(), config.lo_xml_fsm.into()),
                (
                    "lo_xml_datapath".to_string(),
                    config.lo_xml_datapath.into(),
                ),
                ("lo_behav_fsm".to_string(), config.lo_behav_fsm.into()),
                ("operators".to_string(), config.operators.into()),
                ("fsm_states".to_string(), config.fsm_states.into()),
                ("cycles".to_string(), config.cycles.into()),
                ("events".to_string(), config.events.into()),
                ("sim_seconds".to_string(), config.sim_seconds.into()),
            ];
            if let Some(run) = report.runs.iter().find(|r| r.name == config.name) {
                members.push((
                    "kernel".to_string(),
                    Json::obj([
                        ("events", run.kernel.events.into()),
                        ("updates", run.kernel.updates.into()),
                        ("evals", run.kernel.evals.into()),
                        ("delta_cycles", run.kernel.delta_cycles.into()),
                        ("max_queue_depth", run.kernel.max_queue_depth.into()),
                    ]),
                ));
                members.push((
                    "hot_components".to_string(),
                    Json::Arr(
                        run.hot_components
                            .iter()
                            .map(|(name, count)| {
                                Json::obj([
                                    ("name", name.as_str().into()),
                                    ("activations", (*count).into()),
                                ])
                            })
                            .collect(),
                    ),
                ));
                if let Some(profile) = &run.profile {
                    members.push(("profile".to_string(), profile_json(profile)));
                }
                if let Some(cov) = &run.coverage {
                    members.push((
                        "coverage".to_string(),
                        Json::obj([
                            ("states_visited", cov.visited_states.len().into()),
                            ("state_total", cov.state_total.into()),
                            (
                                "visited_states",
                                Json::Arr(
                                    cov.visited_states
                                        .iter()
                                        .map(|s| s.as_str().into())
                                        .collect(),
                                ),
                            ),
                            ("transitions_taken", cov.transitions_taken.into()),
                            ("transition_total", cov.transition_total.into()),
                            (
                                "operator_activations",
                                Json::Obj(
                                    cov.operator_activations
                                        .iter()
                                        .map(|(kind, count)| (kind.clone(), (*count).into()))
                                        .collect(),
                                ),
                            ),
                        ]),
                    ));
                }
            }
            Json::Obj(members)
        })
        .collect();

    Json::obj([
        ("design", name.into()),
        (
            "status",
            if report.passed { "pass" } else { "fail" }.into(),
        ),
        (
            "failure",
            match &report.failure {
                Some(f) => f.as_str().into(),
                None => Json::Null,
            },
        ),
        (
            "fault_skips",
            Json::Arr(report.fault_skips.iter().map(|s| s.as_str().into()).collect()),
        ),
        ("lo_java", metrics.lo_java.into()),
        (
            "golden",
            Json::obj([
                ("seconds", metrics.golden_seconds.into()),
                ("instructions", report.golden.instructions.into()),
                ("loads", report.golden.loads.into()),
                ("stores", report.golden.stores.into()),
                ("branches", report.golden.branches.into()),
            ]),
        ),
        ("total_sim_seconds", metrics.total_sim_seconds().into()),
        ("total_cycles", metrics.total_cycles().into()),
        ("total_operators", metrics.total_operators().into()),
        ("configs", Json::Arr(configs)),
    ])
}

/// The `profile` block of one configuration: only the sections the
/// engine actually filled in are present (classes for the event kernel,
/// ranks for the levelized engine, phases for the cycle sweeper).
fn profile_json(profile: &ConfigProfile) -> Json {
    let mut members = Vec::new();
    if !profile.classes.is_empty() {
        members.push((
            "classes".to_string(),
            Json::Arr(
                profile
                    .classes
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("class", c.class.as_str().into()),
                            ("evals", c.evals.into()),
                            ("nanos", c.nanos.into()),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if !profile.ranks.is_empty() {
        members.push((
            "ranks".to_string(),
            Json::Arr(
                profile
                    .ranks
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("rank", r.rank.into()),
                            ("size", r.size.into()),
                            ("evals", r.evals.into()),
                            ("changes", r.changes.into()),
                            ("nanos", r.nanos.into()),
                            ("hit_rate", r.hit_rate.into()),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    if !profile.phases.is_empty() {
        members.push((
            "phases".to_string(),
            Json::Arr(
                profile
                    .phases
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("phase", p.phase.as_str().into()),
                            ("nanos", p.nanos.into()),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
    Json::Obj(members)
}

/// The full `fpgatest-metrics-v1` report for a suite run: suite verdict
/// counts, per-design entries, and the recorder's span tree.
pub fn suite_json(report: &SuiteReport, recorder: &Recorder) -> Json {
    Json::obj([
        ("schema", SCHEMA.into()),
        (
            "suite",
            Json::obj([
                ("passed", report.passed().into()),
                ("failed", report.failed().into()),
                ("crashed", report.crashed().into()),
                ("timed_out", report.timed_out().into()),
                ("total", report.results.len().into()),
            ]),
        ),
        (
            "designs",
            Json::Arr(
                report
                    .results
                    .iter()
                    .map(|(name, result)| design_json(name, result))
                    .collect(),
            ),
        ),
        ("spans", recorder.to_json()),
    ])
}

/// Renders the timing difference between two metrics reports (current vs
/// a `--baseline` file). Pass/fail verdicts are untouched — only wall
/// times are compared. Designs present on one side only are noted.
pub fn render_baseline_deltas(current: &Json, baseline: &Json) -> String {
    let mut out = String::new();
    out.push_str("timing vs baseline:\n");
    let empty: [Json; 0] = [];
    let current_designs = current
        .get("designs")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let baseline_designs = baseline
        .get("designs")
        .and_then(Json::as_array)
        .unwrap_or(&empty);
    let find = |designs: &[Json], name: &str| -> Option<Json> {
        designs
            .iter()
            .find(|d| d.get("design").and_then(Json::as_str) == Some(name))
            .cloned()
    };

    let mut total_now = 0.0;
    let mut total_then = 0.0;
    for design in current_designs {
        let Some(name) = design.get("design").and_then(Json::as_str) else {
            continue;
        };
        let now = design
            .get("total_sim_seconds")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        match find(baseline_designs, name)
            .as_ref()
            .and_then(|b| b.get("total_sim_seconds"))
            .and_then(Json::as_f64)
        {
            Some(then) => {
                total_now += now;
                total_then += then;
                out.push_str(&format!(
                    "  {:<20} sim {:.4}s -> {:.4}s ({})\n",
                    name,
                    then,
                    now,
                    percent_change(then, now)
                ));
            }
            None => {
                out.push_str(&format!("  {name:<20} not in baseline\n"));
            }
        }
    }
    for design in baseline_designs {
        if let Some(name) = design.get("design").and_then(Json::as_str) {
            if find(current_designs, name).is_none() {
                out.push_str(&format!("  {name:<20} only in baseline\n"));
            }
        }
    }
    out.push_str(&format!(
        "  {:<20} sim {:.4}s -> {:.4}s ({})\n",
        "total",
        total_then,
        total_now,
        percent_change(total_then, total_now)
    ));
    out
}

fn percent_change(then: f64, now: f64) -> String {
    if then <= 0.0 {
        return "n/a".to_string();
    }
    let percent = (now - then) / then * 100.0;
    format!("{percent:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_emit_and_parse_round_trip() {
        let value = Json::obj([
            ("name", "fdct \"1\"\n".into()),
            ("passed", true.into()),
            ("missing", Json::Null),
            ("count", 42u64.into()),
            ("seconds", 0.125f64.into()),
            (
                "items",
                Json::Arr(vec![1u64.into(), "two".into(), Json::Bool(false)]),
            ),
            ("empty_arr", Json::Arr(Vec::new())),
            ("empty_obj", Json::Obj(Vec::new())),
        ]);
        for text in [value.emit(), value.emit_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), value, "{text}");
        }
    }

    #[test]
    fn json_parse_handles_escapes_and_unicode() {
        let parsed = Json::parse(r#"{"s":"aA\n\"é名"}"#).unwrap();
        assert_eq!(parsed.get("s").unwrap().as_str().unwrap(), "aA\n\"é名");
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::Num(5.0).emit(), "5");
        assert_eq!(Json::Num(0.5).emit(), "0.5");
        assert_eq!(Json::Num(-3.0).emit(), "-3");
    }

    #[test]
    fn sort_keys_canonicalizes_nested_objects() {
        let mut value = Json::obj([
            ("zebra", 1u64.into()),
            (
                "items",
                Json::Arr(vec![Json::obj([("b", 2u64.into()), ("a", 3u64.into())])]),
            ),
            ("alpha", 4u64.into()),
        ]);
        value.sort_keys();
        assert_eq!(
            value.emit(),
            r#"{"alpha":4,"items":[{"a":3,"b":2}],"zebra":1}"#
        );
    }

    #[test]
    fn spans_nest_by_call_order() {
        let mut rec = Recorder::new();
        let outer = rec.start("flow.lower");
        let inner = rec.start("flow.lower.schedule");
        rec.end(inner);
        let second = rec.start("flow.lower.datapath");
        rec.end(second);
        rec.end(outer);
        let after = rec.start("flow.compare");
        rec.end(after);

        assert_eq!(
            rec.span_names(),
            [
                "flow.lower",
                "flow.lower.schedule",
                "flow.lower.datapath",
                "flow.compare"
            ]
        );
        let spans = rec.spans();
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].depth, 1);
        assert_eq!(spans[3].depth, 0);
        // Tree shape: two roots, the first with two children.
        let tree = rec.to_json();
        let roots = tree.as_array().unwrap();
        assert_eq!(roots.len(), 2);
        let children = roots[0].get("children").unwrap().as_array().unwrap();
        assert_eq!(children.len(), 2);
        assert!(roots[1].get("children").is_none());
    }

    #[test]
    fn ending_parent_closes_open_children() {
        let mut rec = Recorder::new();
        let outer = rec.start("a");
        let _inner = rec.start("b");
        rec.end(outer); // b never explicitly ended
        assert!(rec.spans().iter().all(|s| s.closed));
        let c = rec.start("c");
        rec.end(c);
        assert_eq!(rec.spans()[2].depth, 0); // c is a root, not a child of a
    }

    #[test]
    fn span_attrs_serialize() {
        let mut rec = Recorder::new();
        let span = rec.start("flow.parse");
        rec.attr(span, "lines", 7u64);
        rec.attr(span, "design", "fdct1");
        rec.end(span);
        let tree = rec.to_json();
        let attrs = tree.as_array().unwrap()[0].get("attrs").unwrap();
        assert_eq!(attrs.get("lines").unwrap().as_u64(), Some(7));
        assert_eq!(attrs.get("design").unwrap().as_str(), Some("fdct1"));
        // JSONL round-trips line by line.
        let jsonl = rec.to_jsonl();
        let line = Json::parse(jsonl.lines().next().unwrap()).unwrap();
        assert_eq!(line.get("type").unwrap().as_str(), Some("span"));
        assert_eq!(line.get("name").unwrap().as_str(), Some("flow.parse"));
    }

    #[test]
    fn span_durations_are_monotone() {
        let mut rec = Recorder::new();
        let outer = rec.start("outer");
        let inner = rec.start("inner");
        std::thread::sleep(std::time::Duration::from_millis(2));
        rec.end(inner);
        rec.end(outer);
        let outer = rec.find("outer").unwrap();
        let inner = rec.find("inner").unwrap();
        assert!(inner.wall_seconds > 0.0);
        assert!(outer.wall_seconds >= inner.wall_seconds);
    }

    #[test]
    fn absorb_merges_span_forests() {
        let mut main = Recorder::new();
        let root = main.start("suite");
        main.end(root);

        let mut worker = Recorder::new();
        let outer = worker.start("case.a");
        let inner = worker.start("flow.parse");
        worker.end(inner);
        worker.end(outer);

        main.absorb(worker);
        assert_eq!(main.span_names(), ["suite", "case.a", "flow.parse"]);
        // The absorbed tree keeps its shape: case.a is a root with one child.
        let tree = main.to_json();
        let roots = tree.as_array().unwrap();
        assert_eq!(roots.len(), 2);
        let children = roots[1].get("children").unwrap().as_array().unwrap();
        assert_eq!(children.len(), 1);
        assert_eq!(
            children[0].get("name").unwrap().as_str(),
            Some("flow.parse")
        );
        // Timing is rebased onto the absorbing recorder's epoch.
        assert!(main.find("case.a").unwrap().start_seconds >= 0.0);
    }

    #[test]
    fn baseline_deltas_render() {
        let current = Json::parse(
            r#"{"designs":[{"design":"a","total_sim_seconds":0.5},
                           {"design":"new","total_sim_seconds":0.1}]}"#,
        )
        .unwrap();
        let baseline = Json::parse(
            r#"{"designs":[{"design":"a","total_sim_seconds":1.0},
                           {"design":"gone","total_sim_seconds":0.2}]}"#,
        )
        .unwrap();
        let text = render_baseline_deltas(&current, &baseline);
        assert!(text.contains("a "), "{text}");
        assert!(text.contains("-50.0%"), "{text}");
        assert!(text.contains("new") && text.contains("not in baseline"));
        assert!(text.contains("gone") && text.contains("only in baseline"));
        assert!(text.contains("total"));
    }
}
