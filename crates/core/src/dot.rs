//! Graphviz exports, including the regeneration of the paper's Figure 1
//! (the infrastructure diagram) from the flow the code actually executes.

use crate::flow::TestReport;

/// Renders the infrastructure diagram — the reproduction of Figure 1.
///
/// Unlike a hand-drawn figure, this one is generated from the running
/// system: every node corresponds to an artifact the flow produces and
/// every edge to a translation it performs, so the diagram cannot drift
/// from the implementation.
pub fn flow_diagram() -> String {
    let mut g = String::from("digraph infrastructure {\n");
    g.push_str("  rankdir=TB;\n  node [shape=box,fontsize=11];\n");
    // Sources and the compiler.
    g.push_str("  \"algorithm (Java-like)\" [shape=note];\n");
    g.push_str("  \"nenya compiler\" [style=filled,fillcolor=lightblue];\n");
    g.push_str("  \"algorithm (Java-like)\" -> \"nenya compiler\";\n");
    // The XML dialects.
    for xml in ["datapath.xml", "fsm.xml", "rtg.xml"] {
        g.push_str(&format!("  \"{xml}\" [shape=folder];\n"));
        g.push_str(&format!("  \"nenya compiler\" -> \"{xml}\";\n"));
    }
    // Stylesheet translations (the XSLT fan-out).
    let arrows = [
        ("datapath.xml", "datapath.hds", "to hds"),
        ("datapath.xml", "datapath.dot", "to dot"),
        ("fsm.xml", "fsm behavior", "to behavior"),
        ("fsm.xml", "fsm.dot", "to dot"),
        ("rtg.xml", "rtg controller", "to controller"),
        ("rtg.xml", "rtg.dot", "to dot"),
    ];
    for (from, to, label) in arrows {
        g.push_str(&format!("  \"{to}\" [shape=component];\n"));
        g.push_str(&format!("  \"{from}\" -> \"{to}\" [label=\"{label}\",fontsize=9];\n"));
    }
    // Graphviz sink.
    g.push_str("  \"graphviz\" [shape=oval];\n");
    for dot in ["datapath.dot", "fsm.dot", "rtg.dot"] {
        g.push_str(&format!("  \"{dot}\" -> \"graphviz\";\n"));
    }
    // The simulator and its inputs.
    g.push_str("  \"eventsim kernel\" [style=filled,fillcolor=lightblue];\n");
    g.push_str("  \"operator library\" -> \"eventsim kernel\";\n");
    g.push_str("  \"datapath.hds\" -> \"eventsim kernel\";\n");
    g.push_str("  \"fsm behavior\" -> \"eventsim kernel\";\n");
    g.push_str("  \"rtg controller\" -> \"eventsim kernel\";\n");
    // Memory files feed both executions; comparison closes the loop.
    g.push_str("  \"memory/stimulus files\" [shape=cylinder];\n");
    g.push_str("  \"golden interpreter\" [style=filled,fillcolor=lightblue];\n");
    g.push_str("  \"memory/stimulus files\" -> \"eventsim kernel\";\n");
    g.push_str("  \"memory/stimulus files\" -> \"golden interpreter\";\n");
    g.push_str("  \"algorithm (Java-like)\" -> \"golden interpreter\";\n");
    g.push_str("  \"compare\" [shape=diamond,style=filled,fillcolor=lightyellow];\n");
    g.push_str("  \"eventsim kernel\" -> \"compare\" [label=\"final SRAM contents\",fontsize=9];\n");
    g.push_str("  \"golden interpreter\" -> \"compare\" [label=\"final memory images\",fontsize=9];\n");
    g.push_str("  \"verdict\" [shape=oval];\n");
    g.push_str("  \"compare\" -> \"verdict\";\n");
    g.push_str("}\n");
    g
}

/// Bundles every dot artifact of a finished run (datapaths, FSMs, RTG)
/// as `(file name, dot text)` pairs, ready to write to disk.
pub fn report_graphs(report: &TestReport) -> Vec<(String, String)> {
    let mut graphs = Vec::new();
    if let Some(artifacts) = &report.artifacts {
        for config in &artifacts.configs {
            graphs.push((format!("{}_datapath.dot", config.name), config.datapath_dot.clone()));
            graphs.push((format!("{}_fsm.dot", config.name), config.fsm_dot.clone()));
        }
        graphs.push((format!("{}_rtg.dot", report.design), artifacts.rtg_dot.clone()));
    }
    graphs
}

/// Minimal structural well-formedness check used by tests: every quoted
/// edge endpoint is also declared or at least quoted consistently, and
/// braces balance.
pub fn dot_is_balanced(dot: &str) -> bool {
    let opens = dot.matches('{').count();
    let closes = dot.matches('}').count();
    opens == closes && dot.trim_start().starts_with("digraph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::TestFlow;

    #[test]
    fn figure1_diagram_is_wellformed() {
        let dot = flow_diagram();
        assert!(dot_is_balanced(&dot));
        // Every box of the paper's Figure 1 has an analogue.
        for node in [
            "datapath.xml",
            "fsm.xml",
            "rtg.xml",
            "datapath.hds",
            "to dot",
            "operator library",
            "memory/stimulus files",
            "compare",
        ] {
            assert!(dot.contains(node), "missing node '{node}'");
        }
    }

    #[test]
    fn report_graphs_cover_all_configs() {
        let report = TestFlow::new(
            "g",
            "mem out[2]; void main() { int a = 1; out[0] = a; out[1] = a + 1; }",
        )
        .with_partitions(2)
        .run()
        .unwrap();
        let graphs = report_graphs(&report);
        // Two configs × (datapath + fsm) + one rtg.
        assert_eq!(graphs.len(), 5);
        for (name, dot) in &graphs {
            assert!(dot_is_balanced(dot), "graph {name} malformed:\n{dot}");
        }
    }
}
