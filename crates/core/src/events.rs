//! Live structured event stream — the `fpgatest-events-v1` wire format.
//!
//! Post-hoc metrics JSON (`fpgatest-metrics-v1`) tells you what a run
//! did *after* it exits. Long campaigns — suites under `--jobs`,
//! 200-site fault sweeps, fuzzing runs — need to be observable while
//! they run. This module defines a typed event vocabulary and a
//! line-buffered JSONL sink: each event is one JSON object on one line,
//! flushed as it is emitted, so `tail -f events.jsonl` (or a pipe on
//! `--events-out -`) shows a campaign mid-flight, and a killed process
//! leaves only whole lines behind.
//!
//! The stream is also the wire format a future `fpgatest serve` daemon
//! would speak: every line is self-describing (`schema` + `event` +
//! monotonic `seq`), and [`Event::from_json`] round-trips everything
//! [`Event::to_json`] emits.
//!
//! Ordering contract: event *order* is deterministic for a given
//! invocation (the suite pool serializes per-case events in manifest
//! order regardless of which worker finishes first), while wall-clock
//! *values* (rates, ETAs, span durations) naturally vary run to run.

use crate::telemetry::Json;
use std::fmt;
use std::io::{self, BufWriter, Write};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Schema tag carried by every event line.
pub const EVENTS_SCHEMA: &str = "fpgatest-events-v1";

/// One typed occurrence in a run or campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A flow stage span opened (mirrors the telemetry span tree).
    SpanStart {
        /// Span name, e.g. `flow.simulate.fdct1`.
        name: String,
    },
    /// A flow stage span closed.
    SpanEnd {
        /// Span name, matching the corresponding [`Event::SpanStart`].
        name: String,
        /// Monotonic wall-clock duration of the span.
        wall_seconds: f64,
    },
    /// A campaign (suite / faults / fuzz) began.
    CampaignStarted {
        /// Campaign kind: `suite`, `faults`, or `fuzz`.
        kind: String,
        /// What the campaign runs over (manifest path, design, seed).
        key: String,
        /// Planned number of cases / injections.
        total: u64,
    },
    /// A suite case was picked up.
    CaseStarted {
        /// Case name from the manifest.
        case: String,
        /// Zero-based manifest position.
        index: u64,
        /// Case count in the suite.
        total: u64,
    },
    /// A suite case finished with a verdict.
    CaseFinished {
        /// Case name from the manifest.
        case: String,
        /// Zero-based manifest position.
        index: u64,
        /// `pass` / `fail` / `error` / `crash` / `timeout`.
        verdict: String,
        /// Monotonic wall-clock time the case took.
        wall_seconds: f64,
    },
    /// Periodic campaign progress.
    Heartbeat {
        /// Units of work completed so far.
        done: u64,
        /// Total planned units of work.
        total: u64,
        /// Completion rate in units/second (0 when elapsed is ~0).
        rate: f64,
        /// Estimated seconds remaining at the current rate.
        eta_seconds: f64,
        /// Slowest unit of work seen so far (empty before the first).
        slowest: String,
        /// Wall-clock seconds the slowest unit took.
        slowest_seconds: f64,
    },
    /// A fault was injected into a campaign run.
    FaultInjected {
        /// The fault spec, e.g. `stuck1:acc.3`.
        fault: String,
        /// Fault class: `stuck-at` / `bit-flip` / `seu-reg` / `sram-corrupt`.
        class: String,
        /// Zero-based injection index.
        index: u64,
        /// Sampled site count.
        total: u64,
    },
    /// A fault injection's run completed and was classified.
    FaultClassified {
        /// The fault spec, matching the [`Event::FaultInjected`].
        fault: String,
        /// `detected` / `silent` / `hung` / `skipped` / `crashed`.
        outcome: String,
        /// Classification detail (mismatch summary, skip reason, ...).
        detail: String,
        /// Monotonic wall-clock time the injected run took.
        wall_seconds: f64,
    },
    /// The differential fuzzer found a divergence.
    FuzzDivergence {
        /// Case index within the campaign.
        index: u64,
        /// Which compile variant diverged.
        variant: String,
        /// Divergence kind (`DivKind` debug form).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// A campaign finished; always the last event of a campaign stream.
    CampaignFinished {
        /// Campaign kind: `suite`, `faults`, or `fuzz`.
        kind: String,
        /// What the campaign ran over, matching [`Event::CampaignStarted`].
        key: String,
        /// Units of work completed.
        done: u64,
        /// Failures: failed cases, undetected-is-fine — for faults this
        /// counts `silent` outcomes, for fuzz the divergences.
        failed: u64,
        /// Monotonic wall-clock time of the whole campaign.
        wall_seconds: f64,
    },
}

impl Event {
    /// The `event` discriminator string this variant serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::SpanStart { .. } => "span-start",
            Event::SpanEnd { .. } => "span-end",
            Event::CampaignStarted { .. } => "campaign-started",
            Event::CaseStarted { .. } => "case-started",
            Event::CaseFinished { .. } => "case-finished",
            Event::Heartbeat { .. } => "heartbeat",
            Event::FaultInjected { .. } => "fault-injected",
            Event::FaultClassified { .. } => "fault-classified",
            Event::FuzzDivergence { .. } => "fuzz-divergence",
            Event::CampaignFinished { .. } => "campaign-finished",
        }
    }

    /// Serializes to one `fpgatest-events-v1` JSON object carrying the
    /// stream sequence number `seq`.
    pub fn to_json(&self, seq: u64) -> Json {
        let mut pairs: Vec<(String, Json)> = vec![
            ("schema".to_string(), Json::from(EVENTS_SCHEMA)),
            ("seq".to_string(), Json::from(seq)),
            ("event".to_string(), Json::from(self.kind())),
        ];
        let mut put = |key: &str, value: Json| pairs.push((key.to_string(), value));
        match self {
            Event::SpanStart { name } => put("name", Json::from(name.as_str())),
            Event::SpanEnd { name, wall_seconds } => {
                put("name", Json::from(name.as_str()));
                put("wall_seconds", Json::from(*wall_seconds));
            }
            Event::CampaignStarted { kind, key, total } => {
                put("kind", Json::from(kind.as_str()));
                put("key", Json::from(key.as_str()));
                put("total", Json::from(*total));
            }
            Event::CaseStarted { case, index, total } => {
                put("case", Json::from(case.as_str()));
                put("index", Json::from(*index));
                put("total", Json::from(*total));
            }
            Event::CaseFinished {
                case,
                index,
                verdict,
                wall_seconds,
            } => {
                put("case", Json::from(case.as_str()));
                put("index", Json::from(*index));
                put("verdict", Json::from(verdict.as_str()));
                put("wall_seconds", Json::from(*wall_seconds));
            }
            Event::Heartbeat {
                done,
                total,
                rate,
                eta_seconds,
                slowest,
                slowest_seconds,
            } => {
                put("done", Json::from(*done));
                put("total", Json::from(*total));
                put("rate", Json::from(*rate));
                put("eta_seconds", Json::from(*eta_seconds));
                put("slowest", Json::from(slowest.as_str()));
                put("slowest_seconds", Json::from(*slowest_seconds));
            }
            Event::FaultInjected {
                fault,
                class,
                index,
                total,
            } => {
                put("fault", Json::from(fault.as_str()));
                put("class", Json::from(class.as_str()));
                put("index", Json::from(*index));
                put("total", Json::from(*total));
            }
            Event::FaultClassified {
                fault,
                outcome,
                detail,
                wall_seconds,
            } => {
                put("fault", Json::from(fault.as_str()));
                put("outcome", Json::from(outcome.as_str()));
                put("detail", Json::from(detail.as_str()));
                put("wall_seconds", Json::from(*wall_seconds));
            }
            Event::FuzzDivergence {
                index,
                variant,
                kind,
                detail,
            } => {
                put("index", Json::from(*index));
                put("variant", Json::from(variant.as_str()));
                put("kind", Json::from(kind.as_str()));
                put("detail", Json::from(detail.as_str()));
            }
            Event::CampaignFinished {
                kind,
                key,
                done,
                failed,
                wall_seconds,
            } => {
                put("kind", Json::from(kind.as_str()));
                put("key", Json::from(key.as_str()));
                put("done", Json::from(*done));
                put("failed", Json::from(*failed));
                put("wall_seconds", Json::from(*wall_seconds));
            }
        }
        Json::Obj(pairs)
    }

    /// Parses an event object back into its typed form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing/mistyped field, the wrong
    /// schema tag, or the unknown `event` discriminator.
    pub fn from_json(json: &Json) -> Result<Event, String> {
        match json.get("schema").and_then(Json::as_str) {
            Some(EVENTS_SCHEMA) => {}
            Some(other) => return Err(format!("unexpected schema '{other}'")),
            None => return Err("missing 'schema'".to_string()),
        }
        let kind = json
            .get("event")
            .and_then(Json::as_str)
            .ok_or("missing 'event'")?;
        let s = |key: &str| -> Result<String, String> {
            json.get(key)
                .and_then(Json::as_str)
                .map(String::from)
                .ok_or_else(|| format!("{kind}: missing string '{key}'"))
        };
        let u = |key: &str| -> Result<u64, String> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{kind}: missing integer '{key}'"))
        };
        let f = |key: &str| -> Result<f64, String> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{kind}: missing number '{key}'"))
        };
        Ok(match kind {
            "span-start" => Event::SpanStart { name: s("name")? },
            "span-end" => Event::SpanEnd {
                name: s("name")?,
                wall_seconds: f("wall_seconds")?,
            },
            "campaign-started" => Event::CampaignStarted {
                kind: s("kind")?,
                key: s("key")?,
                total: u("total")?,
            },
            "case-started" => Event::CaseStarted {
                case: s("case")?,
                index: u("index")?,
                total: u("total")?,
            },
            "case-finished" => Event::CaseFinished {
                case: s("case")?,
                index: u("index")?,
                verdict: s("verdict")?,
                wall_seconds: f("wall_seconds")?,
            },
            "heartbeat" => Event::Heartbeat {
                done: u("done")?,
                total: u("total")?,
                rate: f("rate")?,
                eta_seconds: f("eta_seconds")?,
                slowest: s("slowest")?,
                slowest_seconds: f("slowest_seconds")?,
            },
            "fault-injected" => Event::FaultInjected {
                fault: s("fault")?,
                class: s("class")?,
                index: u("index")?,
                total: u("total")?,
            },
            "fault-classified" => Event::FaultClassified {
                fault: s("fault")?,
                outcome: s("outcome")?,
                detail: s("detail")?,
                wall_seconds: f("wall_seconds")?,
            },
            "fuzz-divergence" => Event::FuzzDivergence {
                index: u("index")?,
                variant: s("variant")?,
                kind: s("kind")?,
                detail: s("detail")?,
            },
            "campaign-finished" => Event::CampaignFinished {
                kind: s("kind")?,
                key: s("key")?,
                done: u("done")?,
                failed: u("failed")?,
                wall_seconds: f("wall_seconds")?,
            },
            other => return Err(format!("unknown event '{other}'")),
        })
    }
}

struct SinkInner {
    writer: Box<dyn Write + Send>,
    seq: u64,
}

/// A shareable, line-buffered destination for [`Event`]s.
///
/// Cloning is cheap (an `Arc`); all clones feed the same stream and the
/// same monotonic sequence counter, so the suite pool, the flow, and a
/// fault campaign can all hold handles to one output. The disabled sink
/// ([`EventSink::disabled`], also `Default`) makes [`EventSink::emit`] a
/// branch on a `None` — callers never pay for serialization when no
/// stream was requested.
#[derive(Clone, Default)]
pub struct EventSink {
    inner: Option<Arc<Mutex<SinkInner>>>,
}

impl fmt::Debug for EventSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventSink")
            .field("enabled", &self.inner.is_some())
            .finish()
    }
}

impl EventSink {
    /// The no-op sink: [`EventSink::emit`] does nothing.
    pub fn disabled() -> EventSink {
        EventSink { inner: None }
    }

    /// A sink over an arbitrary writer (flushed after every event).
    pub fn to_writer(writer: Box<dyn Write + Send>) -> EventSink {
        EventSink {
            inner: Some(Arc::new(Mutex::new(SinkInner { writer, seq: 0 }))),
        }
    }

    /// A sink writing to `path`, with `-` meaning stdout. File output
    /// goes through a [`BufWriter`], but every event is explicitly
    /// flushed so the file is tail-able and a killed process leaves
    /// only whole lines.
    ///
    /// # Errors
    ///
    /// Returns the I/O error from creating the file.
    pub fn to_path(path: &str) -> io::Result<EventSink> {
        if path == "-" {
            Ok(EventSink::to_writer(Box::new(io::stdout())))
        } else {
            let file = std::fs::File::create(path)?;
            Ok(EventSink::to_writer(Box::new(BufWriter::new(file))))
        }
    }

    /// A sink capturing into memory, plus the handle tests read back.
    pub fn capture() -> (EventSink, CapturedEvents) {
        let captured = CapturedEvents::default();
        (
            EventSink::to_writer(Box::new(captured.clone())),
            captured,
        )
    }

    /// Whether events will actually be written anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Emits one event: serialize, write one line, flush. A no-op on
    /// the disabled sink; write errors are deliberately swallowed (a
    /// full disk must not change a verdict).
    pub fn emit(&self, event: &Event) {
        let Some(inner) = &self.inner else { return };
        let mut inner = inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let seq = inner.seq;
        inner.seq += 1;
        let line = event.to_json(seq).emit();
        let _ = inner.writer.write_all(line.as_bytes());
        let _ = inner.writer.write_all(b"\n");
        let _ = inner.writer.flush();
    }
}

/// Shared campaign bookkeeping: completion/failure counters, rate and
/// ETA, the slowest unit seen — plus the campaign-started, heartbeat,
/// and campaign-finished events every campaign stream carries. The
/// suite runner, the fault campaign, and the fuzzer all drive one of
/// these; campaign-specific events (case verdicts, injections,
/// divergences) are emitted by the caller alongside.
#[derive(Debug)]
pub struct CampaignProgress {
    events: EventSink,
    kind: String,
    key: String,
    total: u64,
    started: Instant,
    heartbeat_every: u64,
    done: u64,
    failed: u64,
    slowest: String,
    slowest_seconds: f64,
}

impl CampaignProgress {
    /// Opens the campaign: emits [`Event::CampaignStarted`] and anchors
    /// the wall clock.
    pub fn start(events: EventSink, kind: &str, key: &str, total: u64) -> CampaignProgress {
        events.emit(&Event::CampaignStarted {
            kind: kind.to_string(),
            key: key.to_string(),
            total,
        });
        CampaignProgress {
            events,
            kind: kind.to_string(),
            key: key.to_string(),
            total,
            started: Instant::now(),
            heartbeat_every: 1,
            done: 0,
            failed: 0,
            slowest: String::new(),
            slowest_seconds: 0.0,
        }
    }

    /// Heartbeat only every `every` completed units (default every
    /// unit); high-volume campaigns like fuzzing thin the stream.
    pub fn heartbeat_every(mut self, every: u64) -> CampaignProgress {
        self.heartbeat_every = every.max(1);
        self
    }

    /// Records one completed unit of work and emits a heartbeat.
    pub fn unit_done(&mut self, name: &str, wall_seconds: f64, failed: bool) {
        self.done += 1;
        if failed {
            self.failed += 1;
        }
        if self.slowest.is_empty() || wall_seconds > self.slowest_seconds {
            self.slowest = name.to_string();
            self.slowest_seconds = wall_seconds;
        }
        if !self.events.is_enabled() || !self.done.is_multiple_of(self.heartbeat_every) {
            return;
        }
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            self.done as f64 / elapsed
        } else {
            0.0
        };
        let remaining = self.total.saturating_sub(self.done);
        let eta_seconds = if rate > 0.0 {
            remaining as f64 / rate
        } else {
            0.0
        };
        self.events.emit(&Event::Heartbeat {
            done: self.done,
            total: self.total,
            rate,
            eta_seconds,
            slowest: self.slowest.clone(),
            slowest_seconds: self.slowest_seconds,
        });
    }

    /// Closes the campaign: emits [`Event::CampaignFinished`], always
    /// the stream's last campaign event.
    pub fn finish(self) {
        self.events.emit(&Event::CampaignFinished {
            kind: self.kind.clone(),
            key: self.key.clone(),
            done: self.done,
            failed: self.failed,
            wall_seconds: self.started.elapsed().as_secs_f64(),
        });
    }
}

/// The in-memory capture buffer behind [`EventSink::capture`].
#[derive(Clone, Default)]
pub struct CapturedEvents(Arc<Mutex<Vec<u8>>>);

impl CapturedEvents {
    /// The raw captured bytes as text.
    pub fn text(&self) -> String {
        let bytes = self.0.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        String::from_utf8_lossy(&bytes).into_owned()
    }

    /// Parses every captured line back into a typed [`Event`].
    ///
    /// # Panics
    ///
    /// Panics when a captured line is not valid `fpgatest-events-v1`
    /// (that is the point: tests call this to assert the stream is).
    pub fn events(&self) -> Vec<Event> {
        self.text()
            .lines()
            .map(|line| {
                let json = Json::parse(line)
                    .unwrap_or_else(|e| panic!("unparseable event line '{line}': {e}"));
                Event::from_json(&json)
                    .unwrap_or_else(|e| panic!("untyped event line '{line}': {e}"))
            })
            .collect()
    }
}

impl Write for CapturedEvents {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One instance of every variant, for round-trip coverage.
    fn all_variants() -> Vec<Event> {
        vec![
            Event::SpanStart {
                name: "flow.simulate.fdct1".into(),
            },
            Event::SpanEnd {
                name: "flow.simulate.fdct1".into(),
                wall_seconds: 0.25,
            },
            Event::CampaignStarted {
                kind: "faults".into(),
                key: "fdct1".into(),
                total: 200,
            },
            Event::CaseStarted {
                case: "sort".into(),
                index: 0,
                total: 5,
            },
            Event::CaseFinished {
                case: "sort".into(),
                index: 0,
                verdict: "pass".into(),
                wall_seconds: 0.125,
            },
            Event::Heartbeat {
                done: 3,
                total: 5,
                rate: 2.5,
                eta_seconds: 0.8,
                slowest: "fdct1".into(),
                slowest_seconds: 0.5,
            },
            Event::FaultInjected {
                fault: "stuck1:acc.3".into(),
                class: "stuck-at".into(),
                index: 7,
                total: 200,
            },
            Event::FaultClassified {
                fault: "stuck1:acc.3".into(),
                outcome: "detected".into(),
                detail: "memory mismatch".into(),
                wall_seconds: 0.01,
            },
            Event::FuzzDivergence {
                index: 17,
                variant: "pipelined/2part".into(),
                kind: "MemoryMismatch".into(),
                detail: "out[3] = 9 vs 12".into(),
            },
            Event::CampaignFinished {
                kind: "suite".into(),
                key: "suite.manifest".into(),
                done: 5,
                failed: 0,
                wall_seconds: 1.5,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for (seq, event) in all_variants().into_iter().enumerate() {
            let line = event.to_json(seq as u64).emit();
            let parsed = Json::parse(&line).expect("line parses");
            assert_eq!(
                parsed.get("schema").and_then(Json::as_str),
                Some(EVENTS_SCHEMA)
            );
            assert_eq!(
                parsed.get("seq").and_then(Json::as_u64),
                Some(seq as u64)
            );
            let back = Event::from_json(&parsed).expect("typed parse");
            assert_eq!(back, event, "round trip of {}", event.kind());
        }
    }

    #[test]
    fn sink_assigns_monotonic_seq_and_whole_lines() {
        let (sink, captured) = EventSink::capture();
        let clone = sink.clone();
        sink.emit(&Event::SpanStart { name: "a".into() });
        clone.emit(&Event::SpanStart { name: "b".into() });
        let text = captured.text();
        assert!(text.ends_with('\n'), "stream ends mid-line: {text:?}");
        let seqs: Vec<u64> = text
            .lines()
            .map(|line| {
                Json::parse(line)
                    .expect("parses")
                    .get("seq")
                    .and_then(Json::as_u64)
                    .expect("has seq")
            })
            .collect();
        assert_eq!(seqs, vec![0, 1], "clones share one counter");
        assert_eq!(captured.events().len(), 2);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = EventSink::default();
        assert!(!sink.is_enabled());
        sink.emit(&Event::SpanStart { name: "x".into() });
    }

    #[test]
    fn from_json_rejects_malformed() {
        let missing = Json::parse(r#"{"schema":"fpgatest-events-v1"}"#).unwrap();
        assert!(Event::from_json(&missing).is_err());
        let unknown =
            Json::parse(r#"{"schema":"fpgatest-events-v1","event":"nope"}"#).unwrap();
        assert!(Event::from_json(&unknown).is_err());
        let wrong_schema = Json::parse(r#"{"schema":"v0","event":"span-start"}"#).unwrap();
        assert!(Event::from_json(&wrong_schema).is_err());
    }
}
