//! LRU cache of [`PreparedDesign`]s keyed by source content.
//!
//! The serve subsystem's compile-once-simulate-many core: jobs hand the
//! cache a source program plus compile options, and get back a shared
//! [`PreparedDesign`] — compiled, stylesheet-translated, netlist- and
//! FSM-table-parsed — ready to simulate. The key is a 64-bit FNV-1a hash
//! of the *whitespace-canonicalized* source and the compile options, so
//! two submissions that differ only in indentation or line breaks share
//! one cache entry (and one compile).
//!
//! Concurrency contract:
//!
//! - The cache is `Sync`; any number of worker threads share one
//!   [`DesignCache`] behind an `Arc`.
//! - Compilation runs *outside* the lock. Concurrent requests for the
//!   same key are single-flighted: the first requester compiles, later
//!   ones block on a condvar and reuse the result — two clients
//!   submitting the same design cost one compile and two simulations.
//! - Hits, misses, and evictions are counted; the serve `stats` request
//!   and the warm/cold benchmark read them.

use crate::flow::{prepare_design, FlowError, PreparedDesign};
use nenya::schedule::SchedulePolicy;
use nenya::{compile_program, CompileError, CompileOptions};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

/// Version of the key encoding below. Bump whenever the field layout
/// changes so old and new keys can never alias.
const KEY_ENCODING_VERSION: u8 = 1;

/// Field-id tags for the key encoding: every field is preceded by its
/// tag byte, so adjacent fields can never alias (e.g. a policy-name
/// suffix flowing into the optimize byte) and adding a field is a
/// guaranteed key change.
const FIELD_SOURCE: u8 = 1;
const FIELD_WIDTH: u8 = 2;
const FIELD_PARTITIONS: u8 = 3;
const FIELD_POLICY: u8 = 4;
const FIELD_OPTIMIZE: u8 = 5;

/// Hashes a source program and its compile options into a cache key.
///
/// The source is canonicalized by splitting on whitespace and re-joining
/// with single spaces, so formatting-only differences map to the same
/// key. Every compile option that changes the generated design (width,
/// policy, partitions, optimize) is folded in as a *tagged, versioned*
/// encoding: a version byte, then each field as a field-id byte followed
/// by a fixed-width or length-prefixed value. Option names come from an
/// exhaustive `match`, never `Debug` formatting, so a rendering change
/// cannot silently re-key the cache.
pub fn content_hash(source: &str, options: &CompileOptions) -> u64 {
    // FNV-1a, 64-bit.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut byte = |b: u8| {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    };
    byte(KEY_ENCODING_VERSION);
    // The canonicalized source, length-prefixed by token count so a
    // source that happens to end in option-like bytes cannot alias an
    // option field.
    byte(FIELD_SOURCE);
    let token_count = source.split_whitespace().count() as u64;
    for b in token_count.to_le_bytes() {
        byte(b);
    }
    for (i, token) in source.split_whitespace().enumerate() {
        if i > 0 {
            byte(b' ');
        }
        for b in token.bytes() {
            byte(b);
        }
    }
    byte(FIELD_WIDTH);
    for b in options.width.to_le_bytes() {
        byte(b);
    }
    byte(FIELD_PARTITIONS);
    for b in (options.partitions as u64).to_le_bytes() {
        byte(b);
    }
    byte(FIELD_POLICY);
    // Stable names via exhaustive match: adding a policy variant is a
    // compile error here until it gets its own spelling.
    let policy_name: &str = match options.policy {
        SchedulePolicy::OneOpPerState => "one-op-per-state",
        SchedulePolicy::List => "list",
    };
    for b in (policy_name.len() as u32).to_le_bytes() {
        byte(b);
    }
    for b in policy_name.bytes() {
        byte(b);
    }
    byte(FIELD_OPTIMIZE);
    byte(u8::from(options.optimize));
    hash
}

/// Counters and occupancy of a [`DesignCache`], as one consistent
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the cache (no compile).
    pub hits: u64,
    /// Requests that compiled (first sight of a key, or re-fetch after
    /// eviction).
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Prepared designs currently held.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
}

/// One in-flight build (single-flight slot). The builder deposits the
/// finished design *here* as well as in the LRU list, so a waiter that
/// loses the wake-up race to an eviction still receives the build it
/// waited for — it must never become a second builder for the same
/// request, and its hit/miss accounting must not depend on LRU timing.
struct Pending {
    /// Distinguishes this build from a later one for the same key: a
    /// waiter that registered with generation *g* must not consume (or
    /// decrement the waiter count of) a successor slot.
    generation: u64,
    /// Threads blocked on the condvar waiting for this build.
    waiters: usize,
    /// Set by the builder on success; the slot stays in the map until
    /// every registered waiter has claimed it.
    result: Option<Arc<PreparedDesign>>,
}

struct CacheInner {
    /// `(key, prepared)` in least-recently-used → most-recently-used
    /// order. Linear scans are fine: capacities are small (designs are
    /// megabyte-scale prepared artifacts, not cheap rows).
    entries: Vec<(u64, Arc<PreparedDesign>)>,
    /// Keys currently being compiled by some thread (single-flight).
    pending: HashMap<u64, Pending>,
    next_generation: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The cross-thread LRU cache. See the [module docs](self).
pub struct DesignCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    ready: Condvar,
}

impl DesignCache {
    /// Creates a cache holding at most `capacity` prepared designs
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        DesignCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                pending: HashMap::new(),
                next_generation: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Compiles + prepares `source` under `options`, or returns the
    /// cached result for an equivalent earlier request.
    ///
    /// # Errors
    ///
    /// Propagates compile and prepare errors; failures are not cached
    /// (the next request for the same key compiles again).
    pub fn get_or_compile(
        &self,
        name: &str,
        source: &str,
        options: &CompileOptions,
    ) -> Result<Arc<PreparedDesign>, FlowError> {
        let key = content_hash(source, options);
        let name = name.to_string();
        let source = source.to_string();
        let options = options.clone();
        self.get_or_prepare(key, move || {
            let program = nenya::lang::parse(&source)
                .map_err(|e| FlowError::Compile(CompileError::from(e)))?;
            let design = compile_program(&name, &program, &options)?;
            prepare_design(design)
        })
    }

    /// The generic single-flight lookup: returns the cached design for
    /// `key`, or runs `build` (outside the lock) and caches its result.
    /// Concurrent callers with the same key block until the first
    /// caller's build resolves, then reuse it.
    ///
    /// Accounting contract (locked in by the racer test below): one
    /// build is exactly one miss, and every waiter that reuses it is
    /// exactly one hit — even when the freshly built entry is evicted
    /// from the LRU list before a waiter wakes up. Waiters are handed
    /// the built design through the pending slot, never by re-probing
    /// the LRU list, so an eviction race can neither trigger a second
    /// compile nor skew the counters.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error to the caller that ran it; blocked
    /// callers retry (at most one of them re-runs a failed build).
    pub fn get_or_prepare<F>(&self, key: u64, build: F) -> Result<Arc<PreparedDesign>, FlowError>
    where
        F: FnOnce() -> Result<PreparedDesign, FlowError>,
    {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let generation = 'probe: loop {
            if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
                let entry = inner.entries.remove(pos);
                let prepared = entry.1.clone();
                inner.entries.push(entry);
                inner.hits += 1;
                return Ok(prepared);
            }
            let Some(pending) = inner.pending.get_mut(&key) else {
                // Nobody is building this key: become the builder.
                let generation = inner.next_generation;
                inner.next_generation += 1;
                inner.pending.insert(
                    key,
                    Pending {
                        generation,
                        waiters: 0,
                        result: None,
                    },
                );
                break 'probe generation;
            };
            // A finished build still being drained by its waiters is as
            // good as a cache entry: claim it without registering (no
            // further notification is coming for this slot).
            if let Some(prepared) = pending.result.clone() {
                inner.hits += 1;
                return Ok(prepared);
            }
            // Register with *this* build and wait for its outcome.
            let registered = pending.generation;
            pending.waiters += 1;
            loop {
                inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
                match inner.pending.get_mut(&key) {
                    // Same build, still running.
                    Some(p) if p.generation == registered && p.result.is_none() => {}
                    // Same build, finished: claim the deposited design
                    // directly — it may already be evicted from the LRU
                    // list, which must not change the outcome.
                    Some(p) if p.generation == registered => {
                        let prepared = p.result.clone().expect("checked above");
                        p.waiters -= 1;
                        let drained = p.waiters == 0;
                        inner.hits += 1;
                        if drained {
                            inner.pending.remove(&key);
                        }
                        return Ok(prepared);
                    }
                    // The build we registered with failed (its slot was
                    // torn down, possibly replaced by a newer build):
                    // our registration is gone, so start over from the
                    // top of the probe loop.
                    _ => continue 'probe,
                }
            }
        };
        drop(inner);

        let built = build();

        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match built {
            Ok(prepared) => {
                let prepared = Arc::new(prepared);
                inner.misses += 1;
                inner.entries.push((key, prepared.clone()));
                while inner.entries.len() > self.capacity {
                    inner.entries.remove(0);
                    inner.evictions += 1;
                }
                // Deliver to waiters through the slot; it outlives any
                // eviction of the LRU entry above.
                let pending = inner
                    .pending
                    .get_mut(&key)
                    .expect("builder's pending slot is only removed by the builder");
                debug_assert_eq!(pending.generation, generation);
                if pending.waiters == 0 {
                    inner.pending.remove(&key);
                } else {
                    pending.result = Some(prepared.clone());
                }
                self.ready.notify_all();
                Ok(prepared)
            }
            Err(e) => {
                // Failures are not cached; tearing the slot down sends
                // every waiter back to the probe loop, where exactly one
                // becomes the next builder.
                inner.pending.remove(&key);
                self.ready.notify_all();
                Err(e)
            }
        }
    }

    /// Whether `key` is currently cached (does not touch recency or
    /// counters).
    pub fn contains(&self, key: u64) -> bool {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.entries.iter().any(|(k, _)| *k == key)
    }

    /// One consistent snapshot of the counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn cache_and_prepared_design_are_share_safe() {
        assert_send_sync::<DesignCache>();
        assert_send_sync::<PreparedDesign>();
    }

    fn tiny_source(constant: i64) -> String {
        format!("mem out[1]; void main() {{ out[0] = {constant}; }}")
    }

    #[test]
    fn hash_is_stable_across_whitespace() {
        let opts = CompileOptions::default();
        let a = content_hash("mem out[1];\nvoid   main() {\n  out[0] = 1;\n}", &opts);
        let b = content_hash("mem out[1]; void main() { out[0] = 1; }", &opts);
        let c = content_hash("  mem out[1];\t\tvoid main()\n{ out[0] = 1; }  ", &opts);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Content changes change the key.
        assert_ne!(a, content_hash("mem out[1]; void main() { out[0] = 2; }", &opts));
        // Token boundaries matter: "ab c" != "a bc".
        assert_ne!(content_hash("ab c", &opts), content_hash("a bc", &opts));
        // Option changes change the key.
        let wide = CompileOptions {
            width: 32,
            ..CompileOptions::default()
        };
        assert_ne!(a, content_hash("mem out[1]; void main() { out[0] = 1; }", &wide));
        let parts = CompileOptions {
            partitions: 2,
            ..CompileOptions::default()
        };
        assert_ne!(a, content_hash("mem out[1]; void main() { out[0] = 1; }", &parts));
        let opt = CompileOptions {
            optimize: true,
            ..CompileOptions::default()
        };
        assert_ne!(a, content_hash("mem out[1]; void main() { out[0] = 1; }", &opt));
    }

    #[test]
    fn every_distinct_option_combination_gets_a_distinct_key() {
        // The full grid of compile options that change the generated
        // design. Any two distinct combinations must produce distinct
        // keys — the tagged encoding makes adjacent-field aliasing
        // (e.g. a policy-name suffix bleeding into the optimize byte)
        // impossible by construction, and this locks it in.
        let source = "mem out[1]; void main() { out[0] = 1; }";
        let mut grid = Vec::new();
        for width in [8u32, 16, 24, 32] {
            for policy in [SchedulePolicy::List, SchedulePolicy::OneOpPerState] {
                for partitions in [1usize, 2, 3] {
                    for optimize in [false, true] {
                        grid.push(CompileOptions {
                            width,
                            policy,
                            partitions,
                            optimize,
                        });
                    }
                }
            }
        }
        for i in 0..grid.len() {
            for j in (i + 1)..grid.len() {
                assert_ne!(
                    content_hash(source, &grid[i]),
                    content_hash(source, &grid[j]),
                    "distinct options collide: {:?} vs {:?}",
                    grid[i],
                    grid[j]
                );
            }
        }
        // The same grid point always re-keys identically.
        for opts in &grid {
            assert_eq!(content_hash(source, opts), content_hash(source, opts));
        }
    }

    #[test]
    fn whitespace_variants_share_one_entry() {
        let cache = DesignCache::new(4);
        let opts = CompileOptions::default();
        cache
            .get_or_compile("t", "mem out[1]; void main() { out[0] = 1; }", &opts)
            .unwrap();
        cache
            .get_or_compile("t", "mem out[1];\n  void main() {\n    out[0] = 1;\n  }", &opts)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache = DesignCache::new(2);
        let opts = CompileOptions::default();
        let key = |i| content_hash(&tiny_source(i), &opts);
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        cache.get_or_compile("b", &tiny_source(2), &opts).unwrap();
        // Touch 1 so 2 becomes the LRU entry.
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        cache.get_or_compile("c", &tiny_source(3), &opts).unwrap();
        assert!(cache.contains(key(1)), "recently used entry survived");
        assert!(!cache.contains(key(2)), "LRU entry evicted");
        assert!(cache.contains(key(3)));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn capacity_one_holds_exactly_the_last_design() {
        let cache = DesignCache::new(1);
        let opts = CompileOptions::default();
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        cache.get_or_compile("b", &tiny_source(2), &opts).unwrap();
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 2);
        assert!(cache.contains(content_hash(&tiny_source(1), &opts)));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = DesignCache::new(0);
        assert_eq!(cache.stats().capacity, 1);
    }

    #[test]
    fn compile_errors_propagate_and_are_not_cached() {
        let cache = DesignCache::new(2);
        let opts = CompileOptions::default();
        let bad = "this is not a program";
        assert!(cache.get_or_compile("bad", bad, &opts).is_err());
        assert!(!cache.contains(content_hash(bad, &opts)));
        // A later identical request compiles (and fails) again.
        assert!(cache.get_or_compile("bad", bad, &opts).is_err());
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn concurrent_same_key_requests_compile_once() {
        let cache = Arc::new(DesignCache::new(4));
        let builds = Arc::new(AtomicUsize::new(0));
        let opts = CompileOptions::default();
        let source = tiny_source(7);
        let key = content_hash(&source, &opts);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = cache.clone();
            let builds = builds.clone();
            let source = source.clone();
            let opts = opts.clone();
            handles.push(std::thread::spawn(move || {
                cache.get_or_prepare(key, move || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Slow the build down so the other threads genuinely
                    // arrive while it is pending.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    let program = nenya::lang::parse(&source)
                        .map_err(|e| FlowError::Compile(CompileError::from(e)))?;
                    let design = compile_program("c", &program, &opts)?;
                    prepare_design(design)
                })
            }));
        }
        for handle in handles {
            assert!(handle.join().unwrap().is_ok());
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight compile");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }

    /// The eviction-race accounting contract: N racers on one slow key
    /// produce exactly 1 miss and N−1 hits, and every racer receives the
    /// *same* prepared design — even when LRU pressure evicts the fresh
    /// entry before the waiters wake up. Pressure threads hammer a
    /// capacity-1 cache with distinct keys for the whole build window,
    /// so any wake-up ordering that re-probed the LRU list (the old
    /// implementation) would recompile and double-count.
    #[test]
    fn racers_survive_eviction_with_one_miss_and_n_minus_one_hits() {
        const RACERS: usize = 8;
        let cache = Arc::new(DesignCache::new(1));
        let opts = CompileOptions::default();
        let source = tiny_source(9);
        let key = content_hash(&source, &opts);
        let builds = Arc::new(AtomicUsize::new(0));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let pressure_builds = Arc::new(AtomicUsize::new(0));

        // Distinct-key pressure: every build is its own miss and evicts
        // whatever the capacity-1 cache holds, including the racers'
        // freshly deposited entry.
        let mut pressure = Vec::new();
        for t in 0..3usize {
            let cache = cache.clone();
            let stop = stop.clone();
            let pressure_builds = pressure_builds.clone();
            let opts = opts.clone();
            pressure.push(std::thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    let constant = 1000 + (t as i64) * 1_000_000 + i as i64;
                    let source = tiny_source(constant);
                    let pkey = content_hash(&source, &opts);
                    let opts = opts.clone();
                    let pressure_builds = pressure_builds.clone();
                    cache
                        .get_or_prepare(pkey, move || {
                            pressure_builds.fetch_add(1, Ordering::SeqCst);
                            let program = nenya::lang::parse(&source)
                                .map_err(|e| FlowError::Compile(CompileError::from(e)))?;
                            let design = compile_program("p", &program, &opts)?;
                            prepare_design(design)
                        })
                        .unwrap();
                    i += 1;
                }
            }));
        }

        let mut racers = Vec::new();
        for _ in 0..RACERS {
            let cache = cache.clone();
            let builds = builds.clone();
            let source = source.clone();
            let opts = opts.clone();
            racers.push(std::thread::spawn(move || {
                cache
                    .get_or_prepare(key, move || {
                        builds.fetch_add(1, Ordering::SeqCst);
                        // A wide window so the waiters and the pressure
                        // threads are all genuinely in flight.
                        std::thread::sleep(std::time::Duration::from_millis(100));
                        let program = nenya::lang::parse(&source)
                            .map_err(|e| FlowError::Compile(CompileError::from(e)))?;
                        let design = compile_program("r", &program, &opts)?;
                        prepare_design(design)
                    })
                    .unwrap()
            }));
        }
        let results: Vec<Arc<PreparedDesign>> =
            racers.into_iter().map(|h| h.join().unwrap()).collect();
        stop.store(true, Ordering::SeqCst);
        for handle in pressure {
            handle.join().unwrap();
        }

        assert_eq!(builds.load(Ordering::SeqCst), 1, "racer key compiled once");
        for r in &results[1..] {
            assert!(
                Arc::ptr_eq(&results[0], r),
                "every racer shares the single build"
            );
        }
        let stats = cache.stats();
        let pressure_misses = pressure_builds.load(Ordering::SeqCst) as u64;
        assert_eq!(
            stats.misses,
            1 + pressure_misses,
            "one miss for the racer key, one per distinct pressure key"
        );
        assert_eq!(
            stats.hits,
            (RACERS - 1) as u64,
            "all pressure keys are distinct, so every hit is a racer"
        );
    }

    /// Campaign-shard contention: N worker threads loop over a small key
    /// set (larger than the capacity, so evictions churn constantly) for
    /// many iterations. Whatever interleaving the scheduler produces,
    /// the accounting identity must hold exactly: every request is one
    /// hit or one miss, and every miss is one real build — same-design
    /// shards must ride the single-flight path, never compile twice for
    /// one miss, and never lose a counter update to a race.
    #[test]
    fn sharded_hammer_keeps_stats_exact() {
        const THREADS: usize = 8;
        const ITERS: usize = 40;
        const KEYS: usize = 5;
        let cache = Arc::new(DesignCache::new(2));
        let opts = CompileOptions::default();
        let builds = Arc::new(AtomicUsize::new(0));

        let mut workers = Vec::new();
        for t in 0..THREADS {
            let cache = cache.clone();
            let builds = builds.clone();
            let opts = opts.clone();
            workers.push(std::thread::spawn(move || {
                for i in 0..ITERS {
                    // Stride by a thread-dependent step so the threads
                    // disagree about which keys are hot at any moment.
                    let which = (i * (t + 1)) % KEYS;
                    let source = tiny_source(which as i64);
                    let key = content_hash(&source, &opts);
                    let builds = builds.clone();
                    let opts = opts.clone();
                    let prepared = cache
                        .get_or_prepare(key, move || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            let program = nenya::lang::parse(&source)
                                .map_err(|e| FlowError::Compile(CompileError::from(e)))?;
                            let design = compile_program("h", &program, &opts)?;
                            prepare_design(design)
                        })
                        .unwrap();
                    // Each key's program stores a distinct constant, so a
                    // cross-wired single-flight handoff would be visible.
                    assert_eq!(prepared.design().name, "h");
                }
            }));
        }
        for worker in workers {
            worker.join().unwrap();
        }

        let stats = cache.stats();
        let requests = (THREADS * ITERS) as u64;
        assert_eq!(
            stats.hits + stats.misses,
            requests,
            "every request is exactly one hit or one miss"
        );
        assert_eq!(
            stats.misses,
            builds.load(Ordering::SeqCst) as u64,
            "every miss is exactly one build (single-flight under churn)"
        );
        assert!(
            stats.misses >= KEYS as u64,
            "each distinct key compiled at least once"
        );
        assert_eq!(stats.entries, 2);
        assert_eq!(
            stats.evictions,
            stats.misses - stats.entries as u64,
            "every completed build beyond capacity evicted exactly one entry"
        );
    }
}
