//! LRU cache of [`PreparedDesign`]s keyed by source content.
//!
//! The serve subsystem's compile-once-simulate-many core: jobs hand the
//! cache a source program plus compile options, and get back a shared
//! [`PreparedDesign`] — compiled, stylesheet-translated, netlist- and
//! FSM-table-parsed — ready to simulate. The key is a 64-bit FNV-1a hash
//! of the *whitespace-canonicalized* source and the compile options, so
//! two submissions that differ only in indentation or line breaks share
//! one cache entry (and one compile).
//!
//! Concurrency contract:
//!
//! - The cache is `Sync`; any number of worker threads share one
//!   [`DesignCache`] behind an `Arc`.
//! - Compilation runs *outside* the lock. Concurrent requests for the
//!   same key are single-flighted: the first requester compiles, later
//!   ones block on a condvar and reuse the result — two clients
//!   submitting the same design cost one compile and two simulations.
//! - Hits, misses, and evictions are counted; the serve `stats` request
//!   and the warm/cold benchmark read them.

use crate::flow::{prepare_design, FlowError, PreparedDesign};
use nenya::{compile_program, CompileError, CompileOptions};
use std::collections::HashSet;
use std::sync::{Arc, Condvar, Mutex};

/// Hashes a source program and its compile options into a cache key.
///
/// The source is canonicalized by splitting on whitespace and re-joining
/// with single spaces, so formatting-only differences map to the same
/// key. Every compile option that changes the generated design (width,
/// policy, partitions, optimize) is folded in.
pub fn content_hash(source: &str, options: &CompileOptions) -> u64 {
    // FNV-1a, 64-bit.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut byte = |b: u8| {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    };
    for (i, token) in source.split_whitespace().enumerate() {
        if i > 0 {
            byte(b' ');
        }
        for b in token.bytes() {
            byte(b);
        }
    }
    byte(0);
    for b in options.width.to_le_bytes() {
        byte(b);
    }
    for b in (options.partitions as u64).to_le_bytes() {
        byte(b);
    }
    for b in format!("{:?}", options.policy).bytes() {
        byte(b);
    }
    byte(u8::from(options.optimize));
    hash
}

/// Counters and occupancy of a [`DesignCache`], as one consistent
/// snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Requests served from the cache (no compile).
    pub hits: u64,
    /// Requests that compiled (first sight of a key, or re-fetch after
    /// eviction).
    pub misses: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Prepared designs currently held.
    pub entries: usize,
    /// Configured capacity.
    pub capacity: usize,
}

struct CacheInner {
    /// `(key, prepared)` in least-recently-used → most-recently-used
    /// order. Linear scans are fine: capacities are small (designs are
    /// megabyte-scale prepared artifacts, not cheap rows).
    entries: Vec<(u64, Arc<PreparedDesign>)>,
    /// Keys currently being compiled by some thread (single-flight).
    pending: HashSet<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The cross-thread LRU cache. See the [module docs](self).
pub struct DesignCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
    ready: Condvar,
}

impl DesignCache {
    /// Creates a cache holding at most `capacity` prepared designs
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        DesignCache {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                pending: HashSet::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            ready: Condvar::new(),
        }
    }

    /// Compiles + prepares `source` under `options`, or returns the
    /// cached result for an equivalent earlier request.
    ///
    /// # Errors
    ///
    /// Propagates compile and prepare errors; failures are not cached
    /// (the next request for the same key compiles again).
    pub fn get_or_compile(
        &self,
        name: &str,
        source: &str,
        options: &CompileOptions,
    ) -> Result<Arc<PreparedDesign>, FlowError> {
        let key = content_hash(source, options);
        let name = name.to_string();
        let source = source.to_string();
        let options = options.clone();
        self.get_or_prepare(key, move || {
            let program = nenya::lang::parse(&source)
                .map_err(|e| FlowError::Compile(CompileError::from(e)))?;
            let design = compile_program(&name, &program, &options)?;
            prepare_design(design)
        })
    }

    /// The generic single-flight lookup: returns the cached design for
    /// `key`, or runs `build` (outside the lock) and caches its result.
    /// Concurrent callers with the same key block until the first
    /// caller's build resolves, then reuse it.
    ///
    /// # Errors
    ///
    /// Propagates `build`'s error to the caller that ran it; blocked
    /// callers retry (at most one of them re-runs a failed build).
    pub fn get_or_prepare<F>(&self, key: u64, build: F) -> Result<Arc<PreparedDesign>, FlowError>
    where
        F: FnOnce() -> Result<PreparedDesign, FlowError>,
    {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(pos) = inner.entries.iter().position(|(k, _)| *k == key) {
                let entry = inner.entries.remove(pos);
                let prepared = entry.1.clone();
                inner.entries.push(entry);
                inner.hits += 1;
                return Ok(prepared);
            }
            if !inner.pending.contains(&key) {
                break;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
        inner.pending.insert(key);
        drop(inner);

        let built = build();

        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.pending.remove(&key);
        self.ready.notify_all();
        match built {
            Ok(prepared) => {
                let prepared = Arc::new(prepared);
                inner.misses += 1;
                inner.entries.push((key, prepared.clone()));
                while inner.entries.len() > self.capacity {
                    inner.entries.remove(0);
                    inner.evictions += 1;
                }
                Ok(prepared)
            }
            Err(e) => Err(e),
        }
    }

    /// Whether `key` is currently cached (does not touch recency or
    /// counters).
    pub fn contains(&self, key: u64) -> bool {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.entries.iter().any(|(k, _)| *k == key)
    }

    /// One consistent snapshot of the counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
            entries: inner.entries.len(),
            capacity: self.capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn cache_and_prepared_design_are_share_safe() {
        assert_send_sync::<DesignCache>();
        assert_send_sync::<PreparedDesign>();
    }

    fn tiny_source(constant: i64) -> String {
        format!("mem out[1]; void main() {{ out[0] = {constant}; }}")
    }

    #[test]
    fn hash_is_stable_across_whitespace() {
        let opts = CompileOptions::default();
        let a = content_hash("mem out[1];\nvoid   main() {\n  out[0] = 1;\n}", &opts);
        let b = content_hash("mem out[1]; void main() { out[0] = 1; }", &opts);
        let c = content_hash("  mem out[1];\t\tvoid main()\n{ out[0] = 1; }  ", &opts);
        assert_eq!(a, b);
        assert_eq!(a, c);
        // Content changes change the key.
        assert_ne!(a, content_hash("mem out[1]; void main() { out[0] = 2; }", &opts));
        // Token boundaries matter: "ab c" != "a bc".
        assert_ne!(content_hash("ab c", &opts), content_hash("a bc", &opts));
        // Option changes change the key.
        let wide = CompileOptions {
            width: 32,
            ..CompileOptions::default()
        };
        assert_ne!(a, content_hash("mem out[1]; void main() { out[0] = 1; }", &wide));
        let parts = CompileOptions {
            partitions: 2,
            ..CompileOptions::default()
        };
        assert_ne!(a, content_hash("mem out[1]; void main() { out[0] = 1; }", &parts));
        let opt = CompileOptions {
            optimize: true,
            ..CompileOptions::default()
        };
        assert_ne!(a, content_hash("mem out[1]; void main() { out[0] = 1; }", &opt));
    }

    #[test]
    fn whitespace_variants_share_one_entry() {
        let cache = DesignCache::new(4);
        let opts = CompileOptions::default();
        cache
            .get_or_compile("t", "mem out[1]; void main() { out[0] = 1; }", &opts)
            .unwrap();
        cache
            .get_or_compile("t", "mem out[1];\n  void main() {\n    out[0] = 1;\n  }", &opts)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let cache = DesignCache::new(2);
        let opts = CompileOptions::default();
        let key = |i| content_hash(&tiny_source(i), &opts);
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        cache.get_or_compile("b", &tiny_source(2), &opts).unwrap();
        // Touch 1 so 2 becomes the LRU entry.
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        cache.get_or_compile("c", &tiny_source(3), &opts).unwrap();
        assert!(cache.contains(key(1)), "recently used entry survived");
        assert!(!cache.contains(key(2)), "LRU entry evicted");
        assert!(cache.contains(key(3)));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn capacity_one_holds_exactly_the_last_design() {
        let cache = DesignCache::new(1);
        let opts = CompileOptions::default();
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        cache.get_or_compile("b", &tiny_source(2), &opts).unwrap();
        cache.get_or_compile("a", &tiny_source(1), &opts).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 2);
        assert!(cache.contains(content_hash(&tiny_source(1), &opts)));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let cache = DesignCache::new(0);
        assert_eq!(cache.stats().capacity, 1);
    }

    #[test]
    fn compile_errors_propagate_and_are_not_cached() {
        let cache = DesignCache::new(2);
        let opts = CompileOptions::default();
        let bad = "this is not a program";
        assert!(cache.get_or_compile("bad", bad, &opts).is_err());
        assert!(!cache.contains(content_hash(bad, &opts)));
        // A later identical request compiles (and fails) again.
        assert!(cache.get_or_compile("bad", bad, &opts).is_err());
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn concurrent_same_key_requests_compile_once() {
        let cache = Arc::new(DesignCache::new(4));
        let builds = Arc::new(AtomicUsize::new(0));
        let opts = CompileOptions::default();
        let source = tiny_source(7);
        let key = content_hash(&source, &opts);
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = cache.clone();
            let builds = builds.clone();
            let source = source.clone();
            let opts = opts.clone();
            handles.push(std::thread::spawn(move || {
                cache.get_or_prepare(key, move || {
                    builds.fetch_add(1, Ordering::SeqCst);
                    // Slow the build down so the other threads genuinely
                    // arrive while it is pending.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    let program = nenya::lang::parse(&source)
                        .map_err(|e| FlowError::Compile(CompileError::from(e)))?;
                    let design = compile_program("c", &program, &opts)?;
                    prepare_design(design)
                })
            }));
        }
        for handle in handles {
            assert!(handle.join().unwrap().is_ok());
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1, "single-flight compile");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 3);
    }
}
