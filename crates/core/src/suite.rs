//! The test-suite runner — the role the ANT build plays in the paper:
//! "automation needed to test the results for all the set of test cases
//! used during the test".
//!
//! A suite is a list of named cases, each a complete [`TestFlow`]
//! description. Suites can be built programmatically or loaded from a
//! manifest file:
//!
//! ```text
//! # suite manifest
//! case fdct1
//!   source fdct.src          # path relative to the manifest
//!   stimulus img fdct_img.stim
//!   width 32
//!   partitions 1
//! case hamming
//!   source hamming.src
//!   stimulus code code.stim
//! ```

use crate::events::{CampaignProgress, Event, EventSink};
use crate::faults::FaultSpec;
use crate::flow::{FlowError, FlowOptions, TestFlow, TestReport};
use crate::stimulus::{self, Stimulus};
use crate::telemetry::Recorder;
use nenya::schedule::SchedulePolicy;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::RecvTimeoutError;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One test case of a suite.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// Case name.
    pub name: String,
    /// Source program text.
    pub source: String,
    /// Initial memory contents.
    pub stimuli: Vec<(String, Stimulus)>,
    /// Flow options for this case.
    pub options: FlowOptions,
}

impl TestCase {
    /// Creates a case with default options and no stimuli.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> Self {
        TestCase {
            name: name.into(),
            source: source.into(),
            stimuli: Vec::new(),
            options: FlowOptions::default(),
        }
    }

    /// Builder-style stimulus.
    pub fn with_stimulus(mut self, mem: impl Into<String>, stimulus: Stimulus) -> Self {
        self.stimuli.push((mem.into(), stimulus));
        self
    }

    /// Builder-style options.
    pub fn with_options(mut self, options: FlowOptions) -> Self {
        self.options = options;
        self
    }
}

/// Result of one case.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one value per case; size is irrelevant
pub enum CaseResult {
    /// The flow produced a verdict.
    Finished(TestReport),
    /// The flow could not run (compile error, bad stimulus, …).
    Errored(FlowError),
    /// The flow panicked. The panic was caught; the other cases of the
    /// run are unaffected. Always a harness bug, never a design verdict,
    /// which is why it gets its own exit code (3) instead of folding into
    /// FAIL.
    Crashed(String),
    /// A watchdog tripped before the flow produced a verdict: either the
    /// per-configuration tick budget ([`FlowOptions::max_ticks`]) or the
    /// wall-clock budget ([`FlowOptions::wall_timeout_ms`]).
    TimedOut {
        /// What tripped, e.g. `configuration 'f' exceeded 5000 ticks`.
        reason: String,
    },
}

impl CaseResult {
    /// Whether the case counts as passing.
    pub fn passed(&self) -> bool {
        matches!(self, CaseResult::Finished(r) if r.passed)
    }

    /// The `status` word used in renders and telemetry: `pass`, `fail`,
    /// `error`, `crash`, or `timeout`.
    pub fn status(&self) -> &'static str {
        match self {
            CaseResult::Finished(r) if r.passed => "pass",
            CaseResult::Finished(_) => "fail",
            CaseResult::Errored(_) => "error",
            CaseResult::Crashed(_) => "crash",
            CaseResult::TimedOut { .. } => "timeout",
        }
    }
}

/// Aggregated results of a suite run.
#[derive(Debug)]
pub struct SuiteReport {
    /// `(case name, result)` pairs in suite order.
    pub results: Vec<(String, CaseResult)>,
}

impl SuiteReport {
    /// Number of passing cases.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|(_, r)| r.passed()).count()
    }

    /// Number of failing or erroring cases.
    pub fn failed(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// Whether every case passed.
    pub fn all_passed(&self) -> bool {
        self.failed() == 0
    }

    /// Number of cases whose flow panicked.
    pub fn crashed(&self) -> usize {
        self.results
            .iter()
            .filter(|(_, r)| matches!(r, CaseResult::Crashed(_)))
            .count()
    }

    /// Number of cases stopped by a watchdog.
    pub fn timed_out(&self) -> usize {
        self.results
            .iter()
            .filter(|(_, r)| matches!(r, CaseResult::TimedOut { .. }))
            .count()
    }

    /// The process exit code for this run: 0 all passed, 3 when any case
    /// crashed the harness, 4 when any case hit a watchdog (and none
    /// crashed), 1 for ordinary failures/errors. Crashes outrank
    /// timeouts because they always indicate a harness bug.
    pub fn exit_code(&self) -> i32 {
        if self.crashed() > 0 {
            3
        } else if self.timed_out() > 0 {
            4
        } else if self.all_passed() {
            0
        } else {
            1
        }
    }

    /// Renders a one-line-per-case summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, result) in &self.results {
            let status = match result {
                CaseResult::Finished(r) if r.passed => "PASS".to_string(),
                CaseResult::Finished(r) => {
                    let why = r
                        .failure
                        .clone()
                        .unwrap_or_else(|| format!("{} memory mismatches", r.mismatches.len()));
                    format!("FAIL ({why})")
                }
                CaseResult::Errored(e) => format!("ERROR ({e})"),
                CaseResult::Crashed(m) => format!("CRASH ({m})"),
                CaseResult::TimedOut { reason } => format!("TIMEOUT ({reason})"),
            };
            out.push_str(&format!("{name:<20} {status}\n"));
        }
        out.push_str(&format!(
            "{} passed, {} failed, {} total\n",
            self.passed(),
            self.failed(),
            self.results.len()
        ));
        out
    }
}

/// A collection of test cases run as a unit.
#[derive(Debug, Default)]
pub struct Suite {
    cases: Vec<TestCase>,
    events: EventSink,
    events_key: String,
}

impl Suite {
    /// Creates an empty suite.
    pub fn new() -> Self {
        Suite::default()
    }

    /// Adds a case.
    pub fn push(&mut self, case: TestCase) {
        self.cases.push(case);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with_case(mut self, case: TestCase) -> Self {
        self.push(case);
        self
    }

    /// The cases in order.
    pub fn cases(&self) -> &[TestCase] {
        &self.cases
    }

    /// Forces every case onto one simulation engine (the CLI's `--engine`
    /// flag): manifests do not choose engines, the invocation does.
    pub fn set_engine(&mut self, engine: crate::flow::Engine) {
        for case in &mut self.cases {
            case.options.engine = engine;
        }
    }

    /// Enables the engine profiler for every case (the CLI's `--profile`
    /// flag); per-class / per-rank / per-phase timing lands in each
    /// finished report's `profile` block.
    pub fn set_profile(&mut self, enabled: bool) {
        for case in &mut self.cases {
            case.options.profile = enabled;
        }
    }

    /// Streams `fpgatest-events-v1` campaign/case events to `sink` (the
    /// CLI's `--events-out` flag); `key` labels the campaign, typically
    /// the manifest path. Sequential runs also stream the flows' stage
    /// spans; under `run_parallel` only campaign-level events stream, so
    /// event order stays deterministic regardless of worker timing.
    pub fn set_events(&mut self, sink: EventSink, key: impl Into<String>) {
        self.events = sink;
        self.events_key = key.into();
    }

    /// Runs every case, never short-circuiting: a broken case must not
    /// hide results of the others.
    pub fn run(&self) -> SuiteReport {
        self.run_recorded(&mut Recorder::new())
    }

    /// [`run`](Self::run) with tracing: each case gets a `case.<name>`
    /// span, with the flow's stage spans nested beneath it.
    pub fn run_recorded(&self, recorder: &mut Recorder) -> SuiteReport {
        let total = self.cases.len() as u64;
        let mut progress =
            CampaignProgress::start(self.events.clone(), "suite", &self.events_key, total);
        let mut results = Vec::with_capacity(self.cases.len());
        for (index, case) in self.cases.iter().enumerate() {
            if self.events.is_enabled() {
                self.events.emit(&Event::CaseStarted {
                    case: case.name.clone(),
                    index: index as u64,
                    total,
                });
            }
            let case_started = Instant::now();
            let result = run_case(case, recorder, &self.events);
            let wall_seconds = case_started.elapsed().as_secs_f64();
            if self.events.is_enabled() {
                self.events.emit(&Event::CaseFinished {
                    case: case.name.clone(),
                    index: index as u64,
                    verdict: result.status().to_string(),
                    wall_seconds,
                });
            }
            progress.unit_done(&case.name, wall_seconds, !result.passed());
            results.push((case.name.clone(), result));
        }
        progress.finish();
        SuiteReport { results }
    }

    /// Runs cases on a pool of `jobs` worker threads. Results (and their
    /// telemetry spans) are reported in suite order regardless of which
    /// worker finished first, so output is identical to [`run`](Self::run).
    pub fn run_parallel(&self, jobs: usize) -> SuiteReport {
        self.run_parallel_recorded(jobs, &mut Recorder::new())
    }

    /// [`run_parallel`](Self::run_parallel) with tracing. Each worker
    /// records into its own [`Recorder`]; the per-case span trees are
    /// absorbed into `recorder` in suite order after all workers finish.
    pub fn run_parallel_recorded(&self, jobs: usize, recorder: &mut Recorder) -> SuiteReport {
        let jobs = jobs.max(1).min(self.cases.len().max(1));
        if jobs <= 1 {
            return self.run_recorded(recorder);
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<(CaseResult, Recorder)>>> =
            self.cases.iter().map(|_| Mutex::new(None)).collect();
        // Finished cases stream out in manifest order, not finish order:
        // workers deliver into the reassembly buffer, and whoever holds
        // the lock drains every contiguous case, so the event stream is
        // deterministic while still advancing mid-flight.
        let total = self.cases.len() as u64;
        let ordered = self.events.is_enabled().then(|| {
            Mutex::new(OrderedCaseEvents {
                next_to_emit: 0,
                pending: BTreeMap::new(),
                progress: CampaignProgress::start(
                    self.events.clone(),
                    "suite",
                    &self.events_key,
                    total,
                ),
            })
        });
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(case) = self.cases.get(index) else {
                        break;
                    };
                    let mut worker_recorder = Recorder::new();
                    // Workers get no flow-level sink: concurrent stage
                    // spans would interleave nondeterministically.
                    let case_started = Instant::now();
                    let result = run_case(case, &mut worker_recorder, &EventSink::disabled());
                    let wall_seconds = case_started.elapsed().as_secs_f64();
                    if let Some(ordered) = &ordered {
                        ordered
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .deliver(self, index, result.status(), wall_seconds);
                    }
                    *slots[index].lock().expect("slot poisoned") =
                        Some((result, worker_recorder));
                });
            }
        });
        let mut results = Vec::with_capacity(self.cases.len());
        for (index, (case, slot)) in self.cases.iter().zip(slots).enumerate() {
            // A slot can legitimately be empty: if a worker dies in a way
            // `run_case` cannot absorb, the suite must still report every
            // case rather than abort the whole report.
            let (result, worker_recorder) = match slot.into_inner().expect("slot poisoned") {
                Some(filled) => filled,
                None => {
                    if let Some(ordered) = &ordered {
                        ordered
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .deliver(self, index, "crash", 0.0);
                    }
                    (
                        CaseResult::Crashed(format!(
                            "worker died before reporting case '{}'",
                            case.name
                        )),
                        Recorder::new(),
                    )
                }
            };
            recorder.absorb(worker_recorder);
            results.push((case.name.clone(), result));
        }
        if let Some(ordered) = ordered {
            ordered
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .progress
                .finish();
        }
        SuiteReport { results }
    }
}

/// Reassembly buffer turning finish-order worker completions into
/// manifest-order event emission (see `run_parallel_recorded`).
struct OrderedCaseEvents {
    next_to_emit: usize,
    pending: BTreeMap<usize, (&'static str, f64)>,
    progress: CampaignProgress,
}

impl OrderedCaseEvents {
    fn deliver(&mut self, suite: &Suite, index: usize, verdict: &'static str, wall_seconds: f64) {
        self.pending.insert(index, (verdict, wall_seconds));
        let total = suite.cases.len() as u64;
        while let Some((verdict, wall_seconds)) = self.pending.remove(&self.next_to_emit) {
            let name = &suite.cases[self.next_to_emit].name;
            suite.events.emit(&Event::CaseStarted {
                case: name.clone(),
                index: self.next_to_emit as u64,
                total,
            });
            suite.events.emit(&Event::CaseFinished {
                case: name.clone(),
                index: self.next_to_emit as u64,
                verdict: verdict.to_string(),
                wall_seconds,
            });
            self.progress
                .unit_done(name, wall_seconds, verdict != "pass");
            self.next_to_emit += 1;
        }
    }
}

/// Runs one case, crash- and hang-proofed: panics inside the flow are
/// caught and reported as [`CaseResult::Crashed`], tick-watchdog trips
/// become [`CaseResult::TimedOut`], and when the case carries a
/// wall-clock budget the whole flow runs on a watchdogged thread.
fn run_case(case: &TestCase, recorder: &mut Recorder, events: &EventSink) -> CaseResult {
    let Some(wall_ms) = case.options.wall_timeout_ms else {
        return run_case_traced(case, recorder, events);
    };
    // The flow holds `Rc`-based memory handles, so the case cannot be
    // abandoned mid-run from outside; instead the whole case runs on its
    // own thread and the watchdog gives up *waiting*. On a trip the
    // thread is left detached (it still counts ticks and will stop at
    // `max_ticks`); its telemetry is discarded.
    let (sender, receiver) = std::sync::mpsc::channel();
    let case_owned = case.clone();
    let events_owned = events.clone();
    std::thread::spawn(move || {
        let mut worker_recorder = Recorder::new();
        let result = run_case_traced(&case_owned, &mut worker_recorder, &events_owned);
        let _ = sender.send((result, worker_recorder));
    });
    match receiver.recv_timeout(Duration::from_millis(wall_ms)) {
        Ok((result, worker_recorder)) => {
            recorder.absorb(worker_recorder);
            result
        }
        Err(error) => {
            let result = match error {
                RecvTimeoutError::Timeout => CaseResult::TimedOut {
                    reason: format!("wall clock exceeded {wall_ms} ms"),
                },
                RecvTimeoutError::Disconnected => {
                    CaseResult::Crashed("case worker died without reporting".to_string())
                }
            };
            // Synthesize the case span the worker never delivered, so
            // span order still mirrors suite order.
            let span = recorder.start(format!("case.{}", case.name));
            recorder.attr(span, "status", result.status());
            recorder.end(span);
            result
        }
    }
}

/// Runs one case with its `case.<name>` span on the calling thread.
fn run_case_traced(case: &TestCase, recorder: &mut Recorder, events: &EventSink) -> CaseResult {
    let span = recorder.start(format!("case.{}", case.name));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut options = case.options.clone();
        if events.is_enabled() {
            options.events = events.clone();
        }
        let mut flow = TestFlow::new(&case.name, &case.source).with_options(options);
        for (mem, stimulus) in &case.stimuli {
            flow = flow.stimulus(mem, stimulus.clone());
        }
        flow.run_recorded(recorder)
    }));
    let result = match outcome {
        Ok(Ok(report)) => CaseResult::Finished(report),
        Ok(Err(FlowError::Timeout { config, max_ticks })) => CaseResult::TimedOut {
            reason: format!("configuration '{config}' exceeded {max_ticks} ticks"),
        },
        Ok(Err(e)) => CaseResult::Errored(e),
        Err(payload) => CaseResult::Crashed(crate::faults::panic_message(&*payload)),
    };
    recorder.attr(span, "status", result.status());
    match &result {
        CaseResult::Errored(e) => recorder.attr(span, "error", e.to_string()),
        CaseResult::Crashed(m) => recorder.attr(span, "panic", m.clone()),
        CaseResult::TimedOut { reason } => recorder.attr(span, "timeout", reason.clone()),
        CaseResult::Finished(_) => {}
    }
    // `end` also closes any flow spans a panic left dangling.
    recorder.end(span);
    result
}

/// Error produced when loading a suite manifest.
#[derive(Debug)]
pub enum LoadSuiteError {
    /// The manifest or a referenced file could not be read.
    Io(PathBuf, std::io::Error),
    /// The manifest text is malformed.
    Manifest {
        /// 1-based manifest line.
        line: usize,
        /// Problem description.
        message: String,
        /// The offending manifest line, verbatim.
        text: String,
    },
    /// A referenced stimulus file is malformed.
    Stimulus(PathBuf, stimulus::ParseStimulusError),
}

impl fmt::Display for LoadSuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadSuiteError::Io(path, e) => write!(f, "cannot read {}: {e}", path.display()),
            LoadSuiteError::Manifest {
                line,
                message,
                text,
            } => {
                write!(f, "manifest line {line}: {message}\n  {line} | {text}")
            }
            LoadSuiteError::Stimulus(path, e) => {
                write!(f, "stimulus {}: {e}", path.display())
            }
        }
    }
}

impl Error for LoadSuiteError {}

/// Loads a suite from a manifest file; file references resolve relative
/// to the manifest's directory.
///
/// # Errors
///
/// Returns [`LoadSuiteError`] for unreadable or malformed files.
pub fn load_manifest(path: impl AsRef<Path>) -> Result<Suite, LoadSuiteError> {
    let path = path.as_ref();
    let text =
        std::fs::read_to_string(path).map_err(|e| LoadSuiteError::Io(path.to_path_buf(), e))?;
    let base = path.parent().unwrap_or_else(|| Path::new("."));
    parse_manifest(&text, base)
}

/// Parses manifest text with `base` as the directory for file references.
///
/// # Errors
///
/// See [`load_manifest`].
pub fn parse_manifest(text: &str, base: &Path) -> Result<Suite, LoadSuiteError> {
    let mut suite = Suite::new();
    let mut current: Option<TestCase> = None;
    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let keyword = tokens.next().expect("non-empty line");
        let manifest_err = |message: String| LoadSuiteError::Manifest {
            line: lineno,
            message,
            text: raw.trim_end().to_string(),
        };
        match keyword {
            "case" => {
                if let Some(done) = current.take() {
                    suite.push(done);
                }
                let name = tokens
                    .next()
                    .ok_or_else(|| manifest_err("'case' needs a name".into()))?;
                current = Some(TestCase::new(name, String::new()));
            }
            _ => {
                let case = current
                    .as_mut()
                    .ok_or_else(|| manifest_err(format!("'{keyword}' before any 'case'")))?;
                match keyword {
                    "source" => {
                        let file = tokens
                            .next()
                            .ok_or_else(|| manifest_err("'source' needs a path".into()))?;
                        let full = base.join(file);
                        case.source = std::fs::read_to_string(&full)
                            .map_err(|e| LoadSuiteError::Io(full.clone(), e))?;
                    }
                    "stimulus" => {
                        let mem = tokens
                            .next()
                            .ok_or_else(|| manifest_err("'stimulus' needs a memory name".into()))?;
                        let file = tokens
                            .next()
                            .ok_or_else(|| manifest_err("'stimulus' needs a path".into()))?;
                        let full = base.join(file);
                        let text = std::fs::read_to_string(&full)
                            .map_err(|e| LoadSuiteError::Io(full.clone(), e))?;
                        let stim = stimulus::parse(&text)
                            .map_err(|e| LoadSuiteError::Stimulus(full.clone(), e))?;
                        case.stimuli.push((mem.to_string(), stim));
                    }
                    "width" => {
                        let w = tokens
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| manifest_err("'width' needs an integer".into()))?;
                        case.options.compile.width = w;
                    }
                    "partitions" => {
                        let k = tokens
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| manifest_err("'partitions' needs an integer".into()))?;
                        case.options.compile.partitions = k;
                    }
                    "optimize" => {
                        case.options.compile.optimize = true;
                    }
                    "max_ticks" => {
                        let n = tokens
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| manifest_err("'max_ticks' needs an integer".into()))?;
                        case.options.max_ticks = n;
                    }
                    "timeout" => {
                        let ms = tokens
                            .next()
                            .and_then(|t| t.parse().ok())
                            .ok_or_else(|| {
                                manifest_err("'timeout' needs milliseconds".into())
                            })?;
                        case.options.wall_timeout_ms = Some(ms);
                    }
                    "fault" => {
                        let spec = tokens
                            .next()
                            .ok_or_else(|| manifest_err("'fault' needs a spec".into()))?;
                        let fault = FaultSpec::parse(spec).map_err(manifest_err)?;
                        case.options.faults.push(fault);
                    }
                    "policy" => {
                        let p = tokens
                            .next()
                            .ok_or_else(|| manifest_err("'policy' needs a value".into()))?;
                        case.options.compile.policy = match p {
                            "list" => SchedulePolicy::List,
                            "one-op-per-state" => SchedulePolicy::OneOpPerState,
                            other => {
                                return Err(manifest_err(format!("unknown policy '{other}'")))
                            }
                        };
                    }
                    other => {
                        return Err(manifest_err(format!("unknown directive '{other}'")));
                    }
                }
            }
        }
    }
    if let Some(done) = current.take() {
        suite.push(done);
    }
    Ok(suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn passing_case(name: &str) -> TestCase {
        TestCase::new(
            name,
            "mem out[2]; void main() { out[0] = 1; out[1] = 2; }",
        )
    }

    #[test]
    fn suite_runs_all_cases() {
        let report = Suite::new()
            .with_case(passing_case("a"))
            .with_case(TestCase::new("broken", "void main() {")) // parse error
            .with_case(passing_case("b"))
            .run();
        assert_eq!(report.results.len(), 3);
        assert_eq!(report.passed(), 2);
        assert_eq!(report.failed(), 1);
        assert!(!report.all_passed());
        let text = report.render();
        assert!(text.contains("a ") && text.contains("ERROR") && text.contains("2 passed"));
    }

    #[test]
    fn manifest_parses_inline() {
        let dir = std::env::temp_dir().join("fpgatest_suite_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("p.src"), "mem out[1]; mem inp[1]; void main() { out[0] = inp[0]; }").unwrap();
        std::fs::write(dir.join("inp.stim"), "0: 9\n").unwrap();
        let manifest = "\
# demo suite
case copy
  source p.src
  stimulus inp inp.stim
  width 16
  partitions 1
  policy list
";
        let suite = parse_manifest(manifest, &dir).unwrap();
        assert_eq!(suite.cases().len(), 1);
        let report = suite.run();
        assert!(report.all_passed(), "{}", report.render());
    }

    #[test]
    fn manifest_errors() {
        let base = Path::new(".");
        assert!(matches!(
            parse_manifest("source x.src\n", base),
            Err(LoadSuiteError::Manifest { line: 1, .. })
        ));
        assert!(matches!(
            parse_manifest("case a\n  bogus 1\n", base),
            Err(LoadSuiteError::Manifest { line: 2, .. })
        ));
        assert!(matches!(
            parse_manifest("case a\n  source /no/such/file.src\n", base),
            Err(LoadSuiteError::Io(_, _))
        ));
        assert!(matches!(
            parse_manifest("case a\n  policy turbo\n", base),
            Err(LoadSuiteError::Manifest { .. })
        ));
    }

    #[test]
    fn manifest_errors_carry_the_offending_line() {
        let err = parse_manifest("case a\n  bogus 1  # what\n", Path::new(".")).unwrap_err();
        let LoadSuiteError::Manifest { line, text, .. } = &err else {
            panic!("expected manifest error, got {err}");
        };
        assert_eq!(*line, 2);
        assert_eq!(text, "  bogus 1  # what");
        let rendered = err.to_string();
        assert!(rendered.contains("line 2"), "{rendered}");
        assert!(rendered.contains("bogus 1  # what"), "{rendered}");
    }

    #[test]
    fn parallel_run_streams_events_in_manifest_order() {
        use crate::events::{CapturedEvents, Event, EventSink};
        let expect = ["a", "broken", "b", "c"];
        let expect_verdicts = ["pass", "error", "pass", "pass"];
        let streams: Vec<CapturedEvents> = [1, 4]
            .iter()
            .map(|&jobs| {
                let (sink, captured) = EventSink::capture();
                let mut suite = Suite::new()
                    .with_case(passing_case("a"))
                    .with_case(TestCase::new("broken", "void main() {"))
                    .with_case(passing_case("b"))
                    .with_case(passing_case("c"));
                suite.set_events(sink, "demo");
                suite.run_parallel(jobs);
                captured
            })
            .collect();
        for (captured, jobs) in streams.iter().zip([1, 4]) {
            // Campaign/case event order must not depend on worker count
            // or finish order; only wall-clock values may differ. Flow
            // stage spans (sequential runs only) are checked separately.
            let events: Vec<Event> = captured
                .events()
                .into_iter()
                .filter(|e| !matches!(e, Event::SpanStart { .. } | Event::SpanEnd { .. }))
                .collect();
            assert!(
                matches!(&events[0], Event::CampaignStarted { kind, key, total }
                    if kind == "suite" && key == "demo" && *total == 4),
                "jobs={jobs}: {:?}",
                events[0]
            );
            let mut at = 1;
            for (index, name) in expect.iter().enumerate() {
                let Event::CaseStarted { case, index: i, total } = &events[at] else {
                    panic!("jobs={jobs}: expected case-started, got {:?}", events[at]);
                };
                assert!(case == name && *i == index as u64 && *total == 4, "jobs={jobs}");
                let Event::CaseFinished { case, verdict, .. } = &events[at + 1] else {
                    panic!("jobs={jobs}: expected case-finished, got {:?}", events[at + 1]);
                };
                assert_eq!(case, name, "jobs={jobs}");
                assert_eq!(verdict, expect_verdicts[index], "jobs={jobs}");
                let Event::Heartbeat { done, total, .. } = &events[at + 2] else {
                    panic!("jobs={jobs}: expected heartbeat, got {:?}", events[at + 2]);
                };
                assert!(*done == index as u64 + 1 && *total == 4, "jobs={jobs}");
                at += 3;
            }
            assert!(
                matches!(&events[at], Event::CampaignFinished { done, failed, .. }
                    if *done == 4 && *failed == 1),
                "jobs={jobs}: {:?}",
                events[at]
            );
        }
        // Sequential streams flow stage spans too; strip them and the
        // two campaign/case streams must agree event for event.
        let kinds = |captured: &CapturedEvents| -> Vec<&'static str> {
            captured
                .events()
                .iter()
                .filter(|e| !matches!(e, Event::SpanStart { .. } | Event::SpanEnd { .. }))
                .map(Event::kind)
                .collect()
        };
        assert_eq!(kinds(&streams[0]), kinds(&streams[1]));
    }

    #[test]
    fn parallel_run_matches_sequential_order_and_verdicts() {
        let suite = Suite::new()
            .with_case(passing_case("a"))
            .with_case(TestCase::new("broken", "void main() {")) // parse error
            .with_case(passing_case("b"))
            .with_case(passing_case("c"));
        let sequential = suite.run();
        for jobs in [1, 2, 4, 8] {
            let mut recorder = Recorder::new();
            let parallel = suite.run_parallel_recorded(jobs, &mut recorder);
            let names: Vec<&str> = parallel.results.iter().map(|(n, _)| n.as_str()).collect();
            assert_eq!(names, ["a", "broken", "b", "c"], "jobs={jobs}");
            assert_eq!(parallel.passed(), sequential.passed(), "jobs={jobs}");
            assert_eq!(parallel.render(), sequential.render(), "jobs={jobs}");
            // Case spans land in suite order regardless of worker timing.
            let case_spans: Vec<&str> = recorder
                .span_names()
                .into_iter()
                .filter(|n| n.starts_with("case."))
                .collect();
            assert_eq!(
                case_spans,
                ["case.a", "case.broken", "case.b", "case.c"],
                "jobs={jobs}"
            );
        }
    }
}
