//! Elaboration: turning the XML artifacts into a live simulation.
//!
//! This follows the paper's arrows literally: the datapath XML is first
//! translated by the `datapath→hds` stylesheet into `.hds` text, which is
//! then parsed by the simulator's netlist loader — the structural path.
//! The FSM XML is converted into a behavioral control table executed by
//! an [`eventsim::ops::ControlUnit`] — the behavioral path (the paper's
//! generated Java).

use eventsim::netlist::ElabMap;
use eventsim::ops::{ControlUnit, FsmCoverageHandle, FsmState, FsmTable, FsmTransition};
use eventsim::{MemHandle, SignalId, Simulator};
use nenya::fsm::Fsm;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use xmlite::Document;

/// Errors raised while elaborating a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElaborateConfigError {
    /// The datapath/fsm XML did not match its dialect.
    Dialect(String),
    /// The stylesheet failed (internal error — stock sheets always apply).
    Stylesheet(String),
    /// The generated `.hds` text failed to parse.
    Hds(String),
    /// The netlist failed to elaborate.
    Netlist(String),
    /// The FSM references signals the datapath does not provide, or is
    /// structurally invalid.
    Fsm(String),
}

impl fmt::Display for ElaborateConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElaborateConfigError::Dialect(m) => write!(f, "dialect error: {m}"),
            ElaborateConfigError::Stylesheet(m) => write!(f, "stylesheet error: {m}"),
            ElaborateConfigError::Hds(m) => write!(f, "hds error: {m}"),
            ElaborateConfigError::Netlist(m) => write!(f, "netlist error: {m}"),
            ElaborateConfigError::Fsm(m) => write!(f, "fsm binding error: {m}"),
        }
    }
}

impl Error for ElaborateConfigError {}

/// A fully elaborated configuration, ready to run.
pub struct ConfigSim {
    /// The simulator holding the structural datapath plus the behavioral
    /// control unit.
    pub sim: Simulator,
    /// SRAM content handles by memory (instance) name.
    pub mems: HashMap<String, MemHandle>,
    /// The `done` flag signal.
    pub done: SignalId,
    /// The clock signal.
    pub clk: SignalId,
    /// The clock period in ticks (fixed by the datapath generator).
    pub clock_period: u64,
    /// The intermediate `.hds` text (kept as a test artifact).
    pub hds_text: String,
    /// FSM state names in control-table order (state 0 is initial).
    pub state_names: Vec<String>,
    /// Total number of transitions declared in the control table.
    pub transition_total: usize,
    /// Live coverage handle for the control unit, present when the
    /// configuration was elaborated with [`elaborate_config_instrumented`].
    pub fsm_coverage: Option<FsmCoverageHandle>,
}

/// Elaborates one configuration from its two XML documents.
///
/// # Errors
///
/// Returns [`ElaborateConfigError`] when any stage of the
/// XML→hds→netlist→simulator or XML→table→control-unit path fails.
pub fn elaborate_config(
    dp_doc: &Document,
    fsm_doc: &Document,
) -> Result<ConfigSim, ElaborateConfigError> {
    elaborate_config_with(dp_doc, fsm_doc, true)
}

/// [`elaborate_config`] with control over whether reaching the FSM's
/// terminal state stops the run. Pass `false` for co-simulation benches
/// where another component (e.g. a CPU) owns the end of simulation.
///
/// # Errors
///
/// As for [`elaborate_config`].
pub fn elaborate_config_with(
    dp_doc: &Document,
    fsm_doc: &Document,
    stop_when_done: bool,
) -> Result<ConfigSim, ElaborateConfigError> {
    elaborate_config_impl(dp_doc, fsm_doc, stop_when_done, None)
}

/// [`elaborate_config`] with the control unit instrumented for FSM
/// state/transition coverage; the returned [`ConfigSim::fsm_coverage`]
/// handle stays valid across the run.
///
/// # Errors
///
/// As for [`elaborate_config`].
pub fn elaborate_config_instrumented(
    dp_doc: &Document,
    fsm_doc: &Document,
    stop_when_done: bool,
) -> Result<ConfigSim, ElaborateConfigError> {
    elaborate_config_impl(dp_doc, fsm_doc, stop_when_done, Some(FsmCoverageHandle::new()))
}

fn elaborate_config_impl(
    dp_doc: &Document,
    fsm_doc: &Document,
    stop_when_done: bool,
    coverage: Option<FsmCoverageHandle>,
) -> Result<ConfigSim, ElaborateConfigError> {
    // Structural path: datapath.xml → .hds → netlist → simulator.
    let sheet = xform::stylesheets::datapath_to_hds();
    let hds_text = xform::apply(&sheet, dp_doc.root())
        .map_err(|e| ElaborateConfigError::Stylesheet(e.to_string()))?;
    let netlist =
        eventsim::hds::parse(&hds_text).map_err(|e| ElaborateConfigError::Hds(e.to_string()))?;
    let mut sim = Simulator::new();
    let map = netlist
        .elaborate(&mut sim)
        .map_err(|e| ElaborateConfigError::Netlist(e.to_string()))?;

    // Behavioral path: fsm.xml → control table → ControlUnit.
    let fsm = nenya::xml::parse_fsm(fsm_doc)
        .map_err(|e| ElaborateConfigError::Dialect(e.to_string()))?;
    let clock_name = dp_doc
        .root()
        .attr("clock")
        .ok_or_else(|| ElaborateConfigError::Dialect("datapath lacks clock attribute".into()))?;
    let clk = lookup(&map, clock_name)?;
    let done = lookup(&map, "done")?;
    let (state_names, transition_total) =
        attach_control_unit_cov(&mut sim, &map, &fsm, clk, stop_when_done, coverage.clone())?;

    Ok(ConfigSim {
        sim,
        mems: map.mems.clone(),
        done,
        clk,
        clock_period: 10,
        hds_text,
        state_names,
        transition_total,
        fsm_coverage: coverage,
    })
}

fn lookup(map: &ElabMap, name: &str) -> Result<SignalId, ElaborateConfigError> {
    map.signal(name)
        .map_err(|e| ElaborateConfigError::Fsm(e.to_string()))
}

/// Converts a name-based FSM description into an index-based
/// [`FsmTable`], returning the table plus the condition and output signal
/// names in table order. Both the event-driven path and the cycle-based
/// baseline build their control units from this.
///
/// # Errors
///
/// Returns [`ElaborateConfigError::Fsm`] for dangling state references or
/// inconsistent tables.
#[allow(clippy::type_complexity)] // (table, condition names, output names)
pub fn fsm_to_table(
    fsm: &Fsm,
) -> Result<(FsmTable, Vec<String>, Vec<(String, u32)>), ElaborateConfigError> {
    // Order states with the initial state first (the kernel's FsmTable
    // starts in state 0), preserving relative order otherwise.
    let initial_index = fsm
        .states
        .iter()
        .position(|s| s.name == fsm.initial)
        .ok_or_else(|| {
            ElaborateConfigError::Fsm(format!("initial state '{}' missing", fsm.initial))
        })?;
    let mut order: Vec<usize> = (0..fsm.states.len()).collect();
    order.swap(0, initial_index);
    let index_of: HashMap<&str, usize> = order
        .iter()
        .enumerate()
        .map(|(new, &old)| (fsm.states[old].name.as_str(), new))
        .collect();

    let output_index: HashMap<&str, usize> = fsm
        .outputs
        .iter()
        .enumerate()
        .map(|(i, (name, _))| (name.as_str(), i))
        .collect();
    let cond_index: HashMap<&str, usize> = fsm
        .inputs
        .iter()
        .enumerate()
        .map(|(i, name)| (name.as_str(), i))
        .collect();

    let mut states = Vec::with_capacity(fsm.states.len());
    for &old in &order {
        let desc = &fsm.states[old];
        let mut outputs = Vec::with_capacity(desc.asserts.len());
        for (signal, value) in &desc.asserts {
            let index = *output_index.get(signal.as_str()).ok_or_else(|| {
                ElaborateConfigError::Fsm(format!(
                    "state '{}' asserts undeclared output '{}'",
                    desc.name, signal
                ))
            })?;
            outputs.push((index, *value));
        }
        let mut transitions = Vec::with_capacity(desc.transitions.len());
        for t in &desc.transitions {
            let target = *index_of.get(t.target.as_str()).ok_or_else(|| {
                ElaborateConfigError::Fsm(format!(
                    "state '{}' transitions to missing state '{}'",
                    desc.name, t.target
                ))
            })?;
            let condition = match &t.cond {
                None => None,
                Some((signal, when)) => {
                    let index = *cond_index.get(signal.as_str()).ok_or_else(|| {
                        ElaborateConfigError::Fsm(format!(
                            "state '{}' tests undeclared condition '{}'",
                            desc.name, signal
                        ))
                    })?;
                    Some((index, *when))
                }
            };
            transitions.push(FsmTransition { condition, target });
        }
        states.push(FsmState {
            name: desc.name.clone(),
            outputs,
            transitions,
            terminal: desc.terminal,
        });
    }

    let table = FsmTable::new(states, fsm.inputs.len(), fsm.outputs.len())
        .map_err(|e| ElaborateConfigError::Fsm(e.to_string()))?;
    Ok((table, fsm.inputs.clone(), fsm.outputs.clone()))
}

/// Builds the control table for `fsm`, binds its signals in `map`, and
/// registers the [`ControlUnit`] with the simulator.
///
/// # Errors
///
/// Returns [`ElaborateConfigError::Fsm`] for dangling signal or state
/// references.
pub fn attach_control_unit(
    sim: &mut Simulator,
    map: &ElabMap,
    fsm: &Fsm,
    clk: SignalId,
) -> Result<(), ElaborateConfigError> {
    attach_control_unit_with(sim, map, fsm, clk, true)
}

/// [`attach_control_unit`] with control over the stop-on-done behaviour.
///
/// # Errors
///
/// As for [`attach_control_unit`].
pub fn attach_control_unit_with(
    sim: &mut Simulator,
    map: &ElabMap,
    fsm: &Fsm,
    clk: SignalId,
    stop_when_done: bool,
) -> Result<(), ElaborateConfigError> {
    attach_control_unit_cov(sim, map, fsm, clk, stop_when_done, None).map(|_| ())
}

/// [`attach_control_unit_with`] plus an optional coverage handle; returns
/// the state names in table order and the total transition count, which
/// coverage reports need to compute "visited / total" ratios.
///
/// # Errors
///
/// As for [`attach_control_unit`].
pub fn attach_control_unit_cov(
    sim: &mut Simulator,
    map: &ElabMap,
    fsm: &Fsm,
    clk: SignalId,
    stop_when_done: bool,
    coverage: Option<FsmCoverageHandle>,
) -> Result<(Vec<String>, usize), ElaborateConfigError> {
    let (table, condition_names, output_names) = fsm_to_table(fsm)?;
    let state_names: Vec<String> = table.states().iter().map(|s| s.name.clone()).collect();
    let transition_total: usize = table.states().iter().map(|s| s.transitions.len()).sum();
    let mut conditions = Vec::with_capacity(condition_names.len());
    for name in &condition_names {
        conditions.push(lookup_signal(map, name)?);
    }
    let mut outputs = Vec::with_capacity(output_names.len());
    let mut widths = Vec::with_capacity(output_names.len());
    for (name, width) in &output_names {
        outputs.push(lookup_signal(map, name)?);
        widths.push(*width);
    }

    let mut unit = ControlUnit::new(fsm.name.clone(), clk, conditions, outputs, widths, table)
        .with_stop_when_done(stop_when_done);
    if let Some(handle) = coverage {
        unit = unit.with_coverage(handle);
    }
    sim.add_component(unit);
    Ok((state_names, transition_total))
}

fn lookup_signal(map: &ElabMap, name: &str) -> Result<SignalId, ElaborateConfigError> {
    map.signal(name)
        .map_err(|e| ElaborateConfigError::Fsm(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eventsim::{RunOutcome, SimTime};
    use nenya::{compile, CompileOptions};

    fn elaborate_source(src: &str) -> ConfigSim {
        let design = compile("t", src, &CompileOptions::default()).unwrap();
        let config = &design.configs[0];
        let dp_doc = nenya::xml::emit_datapath(&config.datapath);
        let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
        elaborate_config(&dp_doc, &fsm_doc).unwrap()
    }

    #[test]
    fn trivial_design_runs_to_done() {
        let mut cs = elaborate_source("mem out[4]; void main() { out[1] = 42; }");
        let summary = cs.sim.run(SimTime(100_000)).unwrap();
        assert!(
            matches!(summary.outcome, RunOutcome::Stopped(ref m) if m.contains("done")),
            "{:?}",
            summary.outcome
        );
        assert_eq!(cs.mems["out"].load(1), Some(42));
        assert!(cs.sim.value(cs.done).is_true());
    }

    #[test]
    fn loop_design_computes_squares() {
        let mut cs = elaborate_source(
            "mem out[8]; void main() { int i; for (i = 0; i < 8; i = i + 1) { out[i] = i * i; } }",
        );
        let summary = cs.sim.run(SimTime(1_000_000)).unwrap();
        assert!(summary.outcome.is_ok());
        let got: Vec<Option<i64>> = cs.mems["out"].snapshot();
        assert_eq!(
            got,
            (0..8).map(|i| Some(i * i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn hds_artifact_is_kept_and_parses() {
        let cs = elaborate_source("mem out[4]; void main() { out[0] = 1; }");
        assert!(cs.hds_text.contains("hds t"));
        assert!(eventsim::hds::parse(&cs.hds_text).is_ok());
    }

    #[test]
    fn broken_fsm_reference_is_reported() {
        let design = compile("t", "mem out[4]; void main() { out[0] = 1; }", &CompileOptions::default())
            .unwrap();
        let config = &design.configs[0];
        let dp_doc = nenya::xml::emit_datapath(&config.datapath);
        let mut fsm = config.fsm.clone();
        fsm.outputs.push(("phantom_signal".to_string(), 1));
        let fsm_doc = nenya::xml::emit_fsm(&fsm);
        let err = match elaborate_config(&dp_doc, &fsm_doc) {
            Ok(_) => panic!("expected elaboration to fail"),
            Err(e) => e,
        };
        assert!(matches!(err, ElaborateConfigError::Fsm(_)), "{err}");
    }

    #[test]
    fn fsm_table_reorders_initial_state_first() {
        use nenya::fsm::{Fsm, FsmStateDesc, FsmTransitionDesc};
        // Initial state declared *last*: conversion must still start there.
        let fsm = Fsm {
            name: "ctrl".into(),
            inputs: vec![],
            outputs: vec![("o".into(), 8)],
            initial: "start".into(),
            states: vec![
                FsmStateDesc {
                    name: "end".into(),
                    asserts: vec![("o".into(), 9)],
                    transitions: vec![],
                    terminal: true,
                },
                FsmStateDesc {
                    name: "start".into(),
                    asserts: vec![("o".into(), 5)],
                    transitions: vec![FsmTransitionDesc {
                        cond: None,
                        target: "end".into(),
                    }],
                    terminal: false,
                },
            ],
        };
        let (table, conds, outs) = fsm_to_table(&fsm).unwrap();
        assert!(conds.is_empty());
        assert_eq!(outs, vec![("o".to_string(), 8)]);
        assert_eq!(table.states()[0].name, "start");
        assert_eq!(table.states()[0].outputs, vec![(0, 5)]);
        assert_eq!(table.states()[0].transitions[0].target, 1);
        assert!(table.states()[1].terminal);
    }

    #[test]
    fn conditional_design_follows_data() {
        let mut cs = elaborate_source(
            "mem out[2]; void main() { int a = 3; if (a > 2) { out[0] = 1; } else { out[0] = 2; } }",
        );
        cs.sim.run(SimTime(100_000)).unwrap();
        assert_eq!(cs.mems["out"].load(0), Some(1));
    }
}
