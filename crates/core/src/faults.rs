//! Fault-injection campaigns: qualifying the memory-diff oracle.
//!
//! The flow's pass/fail verdict is a post-simulation comparison of final
//! memory contents against the golden software execution. This module
//! measures how good that oracle actually is: it enumerates hardware
//! fault sites in a compiled design (stuck-at bits, transient SEUs, SRAM
//! word corruption), injects them one at a time into the *simulated*
//! side only, and classifies each injection:
//!
//! * **Detected** — the memory diff fires (or the design fails outright:
//!   an X condition, a bad write, a design assertion).
//! * **Silent** — the faulty run still passes: the fault escaped the
//!   oracle. A high silent fraction means the test stimuli or the
//!   comparison need strengthening.
//! * **Hung** — the fault made the design spin forever (for example a
//!   stuck loop condition) and the tick watchdog tripped.
//! * **Skipped** — the selected engine cannot express the fault class;
//!   reported with a reason, never counted as a pass.
//! * **Crashed** — the harness itself panicked. Always a harness bug;
//!   campaigns gate on this count being zero.
//!
//! Site enumeration is deterministic, and large pools are reduced by
//! seeded sampling (SplitMix64) so a campaign is reproducible from
//! `(design, engine, seed, sites)` alone.

use crate::flow::{run_design, Engine, FlowError};
use crate::suite::TestCase;
use crate::telemetry::Json;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One injectable hardware fault, engine-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSpec {
    /// One bit of a datapath signal permanently forced to a value.
    StuckAt {
        /// Netlist signal name.
        signal: String,
        /// Bit index within the signal.
        bit: u32,
        /// The forced value.
        value: bool,
    },
    /// One bit of a signal inverted once, at a chosen clock cycle.
    BitFlip {
        /// Netlist signal name.
        signal: String,
        /// Bit index within the signal.
        bit: u32,
        /// Clock cycle (0-based rising edge) at which the flip lands.
        cycle: u64,
    },
    /// A transient SEU on a register output (`*_q`) — mechanically a
    /// [`FaultSpec::BitFlip`], kept as its own class because register
    /// state upsets are the classic radiation fault model.
    SeuReg {
        /// Register output signal name.
        signal: String,
        /// Bit index within the register.
        bit: u32,
        /// Clock cycle at which the upset lands.
        cycle: u64,
    },
    /// One bit of one SRAM word inverted in the preloaded initial image.
    SramCorrupt {
        /// Memory name.
        mem: String,
        /// Word address.
        addr: usize,
        /// Bit index within the word.
        bit: u32,
    },
}

impl FaultSpec {
    /// Whether this fault needs mid-run state (a scheduled flip) rather
    /// than a static clamp or an initial-image edit.
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultSpec::BitFlip { .. } | FaultSpec::SeuReg { .. })
    }

    /// Short class name used in reports (`stuck-at`, `bit-flip`,
    /// `seu-reg`, `sram-corrupt`).
    pub fn class(&self) -> &'static str {
        match self {
            FaultSpec::StuckAt { .. } => "stuck-at",
            FaultSpec::BitFlip { .. } => "bit-flip",
            FaultSpec::SeuReg { .. } => "seu-reg",
            FaultSpec::SramCorrupt { .. } => "sram-corrupt",
        }
    }

    /// Parses the canonical syntax produced by [`fmt::Display`]:
    ///
    /// * `stuck0:SIGNAL.BIT` / `stuck1:SIGNAL.BIT` (`.BIT` defaults to 0)
    /// * `flip:SIGNAL.BIT@CYCLE`
    /// * `seu:SIGNAL.BIT@CYCLE`
    /// * `sram:MEM@ADDR.BIT`
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown classes or malformed
    /// operands.
    pub fn parse(text: &str) -> Result<FaultSpec, String> {
        let (class, rest) = text
            .split_once(':')
            .ok_or_else(|| format!("fault '{text}': expected CLASS:TARGET"))?;
        let bad = |what: &str| format!("fault '{text}': bad {what}");
        let split_bit = |s: &str| -> Result<(String, u32), String> {
            match s.rsplit_once('.') {
                Some((name, bit)) => Ok((name.to_string(), bit.parse().map_err(|_| bad("bit"))?)),
                None => Ok((s.to_string(), 0)),
            }
        };
        match class {
            "stuck0" | "stuck1" => {
                let (signal, bit) = split_bit(rest)?;
                Ok(FaultSpec::StuckAt {
                    signal,
                    bit,
                    value: class == "stuck1",
                })
            }
            "flip" | "seu" => {
                let (target, cycle) = rest
                    .split_once('@')
                    .ok_or_else(|| bad("target (expected SIGNAL.BIT@CYCLE)"))?;
                let (signal, bit) = split_bit(target)?;
                let cycle = cycle.parse().map_err(|_| bad("cycle"))?;
                Ok(if class == "flip" {
                    FaultSpec::BitFlip { signal, bit, cycle }
                } else {
                    FaultSpec::SeuReg { signal, bit, cycle }
                })
            }
            "sram" => {
                let (mem, word) = rest
                    .split_once('@')
                    .ok_or_else(|| bad("target (expected MEM@ADDR.BIT)"))?;
                let (addr, bit) = word
                    .split_once('.')
                    .ok_or_else(|| bad("word (expected ADDR.BIT)"))?;
                Ok(FaultSpec::SramCorrupt {
                    mem: mem.to_string(),
                    addr: addr.parse().map_err(|_| bad("address"))?,
                    bit: bit.parse().map_err(|_| bad("bit"))?,
                })
            }
            other => Err(format!(
                "fault '{text}': unknown class '{other}' (expected stuck0, stuck1, flip, seu, or sram)"
            )),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpec::StuckAt { signal, bit, value } => {
                write!(f, "stuck{}:{signal}.{bit}", u8::from(*value))
            }
            FaultSpec::BitFlip { signal, bit, cycle } => write!(f, "flip:{signal}.{bit}@{cycle}"),
            FaultSpec::SeuReg { signal, bit, cycle } => write!(f, "seu:{signal}.{bit}@{cycle}"),
            FaultSpec::SramCorrupt { mem, addr, bit } => write!(f, "sram:{mem}@{addr}.{bit}"),
        }
    }
}

/// Classification of one injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionOutcome {
    /// The oracle caught the fault (memory diff or design failure).
    Detected,
    /// The faulty run passed — the fault escaped the oracle.
    Silent,
    /// The tick watchdog tripped.
    Hung,
    /// The engine cannot express this fault class (reason in `detail`).
    Skipped,
    /// The harness panicked — always a harness bug.
    Crashed,
}

impl fmt::Display for InjectionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InjectionOutcome::Detected => "detected",
            InjectionOutcome::Silent => "silent",
            InjectionOutcome::Hung => "hung",
            InjectionOutcome::Skipped => "skipped",
            InjectionOutcome::Crashed => "crashed",
        })
    }
}

impl InjectionOutcome {
    /// Parses the [`fmt::Display`] form back (checkpoint resume).
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown outcome name.
    pub fn parse(text: &str) -> Result<InjectionOutcome, String> {
        match text {
            "detected" => Ok(InjectionOutcome::Detected),
            "silent" => Ok(InjectionOutcome::Silent),
            "hung" => Ok(InjectionOutcome::Hung),
            "skipped" => Ok(InjectionOutcome::Skipped),
            "crashed" => Ok(InjectionOutcome::Crashed),
            other => Err(format!("unknown injection outcome '{other}'")),
        }
    }
}

/// One classified injection.
#[derive(Debug, Clone)]
pub struct InjectionRecord {
    /// The injected fault.
    pub fault: FaultSpec,
    /// How the run was classified.
    pub outcome: InjectionOutcome,
    /// Supporting evidence (first mismatch, failure message, skip
    /// reason).
    pub detail: String,
}

/// Options for [`run_campaign`].
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Seed for site sampling.
    pub seed: u64,
    /// Number of injections to run (the site pool is sampled down to
    /// this).
    pub sites: usize,
    /// Engine executing the faulty runs.
    pub engine: Engine,
    /// Tick watchdog per faulty run; `None` derives a budget from the
    /// clean run (5× its ticks, at least 50k).
    pub max_ticks: Option<u64>,
    /// Live `fpgatest-events-v1` stream: campaign start/finish,
    /// per-injection inject/classify pairs, and heartbeats. Disabled by
    /// default.
    pub events: crate::events::EventSink,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            seed: 1,
            sites: 200,
            engine: Engine::default(),
            max_ticks: None,
            events: crate::events::EventSink::disabled(),
        }
    }
}

/// Result of one fault campaign.
#[derive(Debug)]
pub struct CampaignReport {
    /// Design name.
    pub design: String,
    /// Engine the faulty runs used.
    pub engine: Engine,
    /// Sampling seed.
    pub seed: u64,
    /// Enumerated site-pool size before sampling.
    pub site_pool: usize,
    /// Cycles of the clean (fault-free) reference run.
    pub clean_cycles: u64,
    /// Every injection, in execution order.
    pub injections: Vec<InjectionRecord>,
}

impl CampaignReport {
    /// Number of injections with the given outcome.
    pub fn count(&self, outcome: InjectionOutcome) -> usize {
        self.injections
            .iter()
            .filter(|r| r.outcome == outcome)
            .count()
    }

    /// Detected / (detected + silent + hung) — the oracle's fault
    /// coverage over the injections the engine could express. 0 when
    /// nothing was expressible.
    pub fn detected_fraction(&self) -> f64 {
        let detected = self.count(InjectionOutcome::Detected);
        let denom = detected + self.count(InjectionOutcome::Silent) + self.count(InjectionOutcome::Hung);
        if denom == 0 {
            0.0
        } else {
            detected as f64 / denom as f64
        }
    }

    /// Renders the deterministic human-readable campaign log.
    pub fn render(&self) -> String {
        let mut out = format!(
            "fault campaign: design {} engine {} seed {} pool {} injections {}\n",
            self.design,
            self.engine,
            self.seed,
            self.site_pool,
            self.injections.len()
        );
        for record in &self.injections {
            out.push_str(&format!(
                "  {:<12} {} — {}\n",
                record.outcome.to_string(),
                record.fault,
                record.detail
            ));
        }
        out.push_str(&format!(
            "  detected {} silent {} hung {} skipped {} crashed {} — coverage {:.3}\n",
            self.count(InjectionOutcome::Detected),
            self.count(InjectionOutcome::Silent),
            self.count(InjectionOutcome::Hung),
            self.count(InjectionOutcome::Skipped),
            self.count(InjectionOutcome::Crashed),
            self.detected_fraction()
        ));
        out
    }
}

/// Serializes a campaign as the `fpgatest-faults-v1` JSON schema.
pub fn campaign_json(report: &CampaignReport) -> Json {
    Json::obj([
        ("schema", "fpgatest-faults-v1".into()),
        ("design", report.design.as_str().into()),
        ("engine", report.engine.to_string().into()),
        ("seed", report.seed.into()),
        ("site_pool", report.site_pool.into()),
        ("clean_cycles", report.clean_cycles.into()),
        ("injections", report.injections.len().into()),
        ("detected", report.count(InjectionOutcome::Detected).into()),
        ("silent", report.count(InjectionOutcome::Silent).into()),
        ("hung", report.count(InjectionOutcome::Hung).into()),
        ("skipped", report.count(InjectionOutcome::Skipped).into()),
        ("crashed", report.count(InjectionOutcome::Crashed).into()),
        ("detected_fraction", report.detected_fraction().into()),
        (
            "records",
            Json::Arr(
                report
                    .injections
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("fault", r.fault.to_string().into()),
                            ("class", r.fault.class().into()),
                            ("outcome", r.outcome.to_string().into()),
                            ("detail", r.detail.as_str().into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The SplitMix64 generator — the same tiny deterministic PRNG the fuzz
/// crate seeds its campaigns with, re-implemented here so `core` does not
/// depend on `fuzz` (the dependency points the other way).
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Enumerates the deterministic fault-site pool of a compiled design:
/// per-bit stuck-at-0/1 on every netlist signal, per-bit corruption of
/// every SRAM word, one SEU site per register bit (cycle seeded), and one
/// bit-flip site per signal (bit and cycle seeded). `clean_cycles` bounds
/// the transient schedule.
///
/// # Errors
///
/// Returns a message when the design's netlists cannot be produced.
pub fn enumerate_sites(
    design: &nenya::Design,
    clean_cycles: u64,
    seed: u64,
) -> Result<Vec<FaultSpec>, String> {
    let mut rng = SplitMix64(seed ^ 0xD1F4_17A8_5EED_5EED);
    let mut sites = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let cycle_span = clean_cycles.max(2);
    for config in &design.configs {
        let dp_doc = nenya::xml::emit_datapath(&config.datapath);
        let hds = xform::apply(&xform::stylesheets::datapath_to_hds(), dp_doc.root())
            .map_err(|e| format!("stylesheet: {e}"))?;
        let netlist = eventsim::hds::parse(&hds).map_err(|e| format!("hds: {e}"))?;
        for decl in netlist.signals() {
            if !seen.insert(decl.name.clone()) {
                continue;
            }
            for bit in 0..decl.width {
                for value in [false, true] {
                    sites.push(FaultSpec::StuckAt {
                        signal: decl.name.clone(),
                        bit,
                        value,
                    });
                }
            }
            let bit = rng.below(decl.width as u64) as u32;
            let cycle = 1 + rng.below(cycle_span - 1);
            if decl.name.ends_with("_q") {
                sites.push(FaultSpec::SeuReg {
                    signal: decl.name.clone(),
                    bit,
                    cycle,
                });
            } else {
                sites.push(FaultSpec::BitFlip {
                    signal: decl.name.clone(),
                    bit,
                    cycle,
                });
            }
        }
    }
    for mem in &design.mems {
        for addr in 0..mem.size {
            for bit in 0..design.width {
                sites.push(FaultSpec::SramCorrupt {
                    mem: mem.name.clone(),
                    addr,
                    bit,
                });
            }
        }
    }
    Ok(sites)
}

/// Runs a full fault campaign for one test case: compile, clean
/// reference run, site enumeration, seeded sampling, then one faulty run
/// per sampled site, classified.
///
/// The harness never lets an injection escape: panics inside the flow
/// are caught and recorded as [`InjectionOutcome::Crashed`].
///
/// # Errors
///
/// Returns [`FlowError`] when the *clean* flow cannot produce a verdict
/// (broken test case), or a compile failure. A clean run that fails its
/// own verdict is also an error — fault classification is meaningless on
/// a design that does not pass clean.
pub fn run_campaign(
    case: &TestCase,
    options: &CampaignOptions,
) -> Result<CampaignReport, FlowError> {
    let program = nenya::lang::parse(&case.source)
        .map_err(|e| FlowError::Compile(nenya::CompileError::from(e)))?;
    let design = nenya::compile_program(&case.name, &program, &case.options.compile)?;

    let mut clean_options = case.options.clone();
    clean_options.engine = options.engine;
    clean_options.keep_artifacts = false;
    clean_options.faults.clear();
    let clean = run_design(&design, &case.stimuli, &clean_options)?;
    if !clean.passed {
        return Err(FlowError::Fault(format!(
            "clean run of '{}' fails ({}); cannot classify faults",
            case.name,
            clean
                .failure
                .clone()
                .unwrap_or_else(|| format!("{} mismatches", clean.mismatches.len()))
        )));
    }
    let clean_cycles = clean.runs.iter().map(|r| r.cycles).max().unwrap_or(0);
    let clean_ticks: u64 = clean.runs.iter().map(|r| r.cycles * 10).sum();

    let mut sites =
        enumerate_sites(&design, clean_cycles, options.seed).map_err(FlowError::Fault)?;
    let site_pool = sites.len();
    // Seeded Fisher–Yates, then truncate: a deterministic sample without
    // replacement.
    let mut rng = SplitMix64(options.seed);
    for i in (1..sites.len()).rev() {
        sites.swap(i, rng.below(i as u64 + 1) as usize);
    }
    sites.truncate(options.sites);

    let max_ticks = options.max_ticks.unwrap_or((clean_ticks * 5).max(50_000));
    let total = sites.len() as u64;
    let mut progress = crate::events::CampaignProgress::start(
        options.events.clone(),
        "faults",
        &case.name,
        total,
    );
    let mut injections = Vec::with_capacity(sites.len());

    // Batch engine: pack up to 64 fault sites into one lane-parallel
    // walk per chunk — one transform, one golden run, and one schedule
    // walk amortized over the whole chunk. Verdict strings are identical
    // to the per-site path (the engine's per-lane bit-identity
    // contract); a panicking chunk falls back to one-at-a-time injection
    // so `Crashed` stays attributed to a single site.
    if options.engine == Engine::Batch {
        let prepared = crate::flow::prepare_design(design)?;
        let mut faulty_options = clean_options.clone();
        faulty_options.max_ticks = max_ticks;
        let mut index = 0u64;
        for chunk in sites.chunks(eventsim::batchsim::LANES) {
            let specs: Vec<crate::flow::BatchLaneSpec> = chunk
                .iter()
                .map(|fault| crate::flow::BatchLaneSpec {
                    stimuli: case.stimuli.clone(),
                    faults: vec![fault.clone()],
                })
                .collect();
            let chunk_started = std::time::Instant::now();
            let result =
                catch_unwind(AssertUnwindSafe(|| prepared.run_batch(&specs, &faulty_options)));
            let chunk_wall = chunk_started.elapsed().as_secs_f64();
            let lane_reports = match result {
                Ok(Ok(report)) => Some(report.lanes),
                // Design-scoped error or panic: retry the chunk's sites
                // individually through the sequential classifier.
                Ok(Err(_)) | Err(_) => None,
            };
            for (lane, fault) in chunk.iter().enumerate() {
                if options.events.is_enabled() {
                    options.events.emit(&crate::events::Event::FaultInjected {
                        fault: fault.to_string(),
                        class: fault.class().to_string(),
                        index,
                        total,
                    });
                }
                let (outcome, detail, wall_seconds) = match &lane_reports {
                    Some(lanes) => {
                        let (outcome, detail) = classify_lane(&lanes[lane]);
                        (outcome, detail, chunk_wall / chunk.len() as f64)
                    }
                    None => {
                        let mut site_options = faulty_options.clone();
                        site_options.faults = vec![fault.clone()];
                        let started = std::time::Instant::now();
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            run_design(prepared.design(), &case.stimuli, &site_options)
                        }));
                        let (outcome, detail) = classify(result);
                        let detail = lane_tagged(outcome, detail, lane);
                        (outcome, detail, started.elapsed().as_secs_f64())
                    }
                };
                if options.events.is_enabled() {
                    options.events.emit(&crate::events::Event::FaultClassified {
                        fault: fault.to_string(),
                        outcome: outcome.to_string(),
                        detail: detail.clone(),
                        wall_seconds,
                    });
                }
                progress.unit_done(
                    &fault.to_string(),
                    wall_seconds,
                    outcome == InjectionOutcome::Silent,
                );
                injections.push(InjectionRecord {
                    fault: fault.clone(),
                    outcome,
                    detail,
                });
                index += 1;
            }
        }
        progress.finish();
        return Ok(CampaignReport {
            design: case.name.clone(),
            engine: options.engine,
            seed: options.seed,
            site_pool,
            clean_cycles,
            injections,
        });
    }

    for (index, fault) in sites.into_iter().enumerate() {
        let mut faulty_options = clean_options.clone();
        faulty_options.max_ticks = max_ticks;
        faulty_options.faults = vec![fault.clone()];
        if options.events.is_enabled() {
            options.events.emit(&crate::events::Event::FaultInjected {
                fault: fault.to_string(),
                class: fault.class().to_string(),
                index: index as u64,
                total,
            });
        }
        let injection_started = std::time::Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_design(&design, &case.stimuli, &faulty_options)
        }));
        let (outcome, detail) = classify(result);
        let wall_seconds = injection_started.elapsed().as_secs_f64();
        if options.events.is_enabled() {
            options.events.emit(&crate::events::Event::FaultClassified {
                fault: fault.to_string(),
                outcome: outcome.to_string(),
                detail: detail.clone(),
                wall_seconds,
            });
        }
        // "Failed" for a fault campaign means the oracle missed: silent
        // escapes, not detections.
        progress.unit_done(
            &fault.to_string(),
            wall_seconds,
            outcome == InjectionOutcome::Silent,
        );
        injections.push(InjectionRecord {
            fault,
            outcome,
            detail,
        });
    }
    progress.finish();

    Ok(CampaignReport {
        design: case.name.clone(),
        engine: options.engine,
        seed: options.seed,
        site_pool,
        clean_cycles,
        injections,
    })
}

/// When a batch chunk panics and its sites rerun one at a time, a site
/// that *still* crashes carries its lane slot in the detail so sharded
/// reassembly (and a human) can see which lane of the packed walk blew
/// up. The slot is the site's position in a full chunk — `index %
/// LANES` — which is stable across shard counts and resume boundaries.
fn lane_tagged(outcome: InjectionOutcome, detail: String, lane: usize) -> String {
    if outcome == InjectionOutcome::Crashed {
        format!("[lane {lane}] {detail}")
    } else {
        detail
    }
}

/// Knobs for [`run_campaign_sharded`] beyond the base
/// [`CampaignOptions`].
#[derive(Debug, Clone, Default)]
pub struct ShardedCampaignOptions {
    /// Worker-shard count (clamped to at least 1).
    pub shards: usize,
    /// Where to write `fpgatest-checkpoint-v1` snapshots (`None` = no
    /// checkpointing).
    pub checkpoint: Option<std::path::PathBuf>,
    /// Merged injections between snapshots (0 = a sensible default).
    pub checkpoint_every: u64,
    /// Resume from this checkpoint file: its completed prefix is
    /// re-merged (and its events re-emitted) without re-running.
    pub resume: Option<std::path::PathBuf>,
    /// Cooperative stop flag (tests; SIGINT uses
    /// [`crate::campaign::install_sigint`]).
    pub stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Stop when the process-wide SIGINT flag fires.
    pub sigint: bool,
}

/// What [`run_campaign_sharded`] produced.
#[derive(Debug)]
pub struct ShardedCampaignOutcome {
    /// The (possibly partial, when interrupted) campaign report; the
    /// injections are always a prefix of the canonical site order.
    pub report: CampaignReport,
    /// Whether the run stopped early (stop flag / SIGINT). The
    /// checkpoint file, if any, holds everything merged so far.
    pub interrupted: bool,
    /// Injections skipped thanks to the resume checkpoint.
    pub resumed: u64,
    /// When the resume checkpoint was torn and
    /// [`crate::campaign::Checkpoint::load_salvage`] fell back to another
    /// generation: a human-readable note saying which (for the CLI to
    /// surface on stderr).
    pub salvage: Option<String>,
}

/// [`run_campaign`] across N work-stealing worker shards, with
/// checkpoint/resume. Per-site verdicts are bit-identical to the
/// sequential path; the merged record order is the canonical sampled
/// site order at any shard count.
///
/// Perf shape: the transform stage runs **once** ([`crate::flow::prepare_design`])
/// and the golden reference runs **once**
/// ([`crate::flow::PreparedDesign::prepare_golden`]), then every
/// injection replays only the simulation + comparison stages — unlike
/// the sequential non-batch path, which pays transform + golden per
/// site. The batch engine packs chunks of [`eventsim::batchsim::LANES`]
/// sites into single schedule walks exactly like the sequential batch
/// path (chunks are cut at absolute 64-site boundaries, so packing is
/// shard-count-independent).
///
/// Events: with a live sink, the stream is emitted in merge order with
/// wall-clock fields zeroed (`wall_seconds`, `rate`, `eta_seconds`,
/// `slowest*`), so `--events-out` bytes are identical across
/// `--shards 1..N` and across a killed-then-resumed run (resume
/// re-emits the completed prefix from the checkpoint).
///
/// # Errors
///
/// Everything [`run_campaign`] errors on, plus checkpoint I/O or
/// identity mismatches (wrapped as [`FlowError::Fault`]).
pub fn run_campaign_sharded(
    case: &TestCase,
    options: &CampaignOptions,
    shard: &ShardedCampaignOptions,
) -> Result<ShardedCampaignOutcome, FlowError> {
    use crate::campaign::{Checkpoint, RangeSet, ShardOptions};
    use std::cell::RefCell;

    let program = nenya::lang::parse(&case.source)
        .map_err(|e| FlowError::Compile(nenya::CompileError::from(e)))?;
    let design = nenya::compile_program(&case.name, &program, &case.options.compile)?;

    let mut clean_options = case.options.clone();
    clean_options.engine = options.engine;
    clean_options.keep_artifacts = false;
    clean_options.faults.clear();
    clean_options.events = crate::events::EventSink::disabled();
    let prepared = crate::flow::prepare_design(design)?;
    let clean = prepared.run(&case.stimuli, &clean_options)?;
    if !clean.passed {
        return Err(FlowError::Fault(format!(
            "clean run of '{}' fails ({}); cannot classify faults",
            case.name,
            clean
                .failure
                .clone()
                .unwrap_or_else(|| format!("{} mismatches", clean.mismatches.len()))
        )));
    }
    let clean_cycles = clean.runs.iter().map(|r| r.cycles).max().unwrap_or(0);
    let clean_ticks: u64 = clean.runs.iter().map(|r| r.cycles * 10).sum();

    let mut sites = enumerate_sites(prepared.design(), clean_cycles, options.seed)
        .map_err(FlowError::Fault)?;
    let site_pool = sites.len();
    let mut rng = SplitMix64(options.seed);
    for i in (1..sites.len()).rev() {
        sites.swap(i, rng.below(i as u64 + 1) as usize);
    }
    sites.truncate(options.sites);
    let total = sites.len() as u64;

    let max_ticks = options.max_ticks.unwrap_or((clean_ticks * 5).max(50_000));
    let mut faulty_options = clean_options.clone();
    faulty_options.max_ticks = max_ticks;
    let golden = prepared.prepare_golden(&case.stimuli, &faulty_options)?;

    // Resume: salvage what survives on disk, validate identity, preload
    // the record prefix. Salvage only relaxes *structural* damage (torn
    // writes); an identity mismatch below still refuses outright.
    let mut skip = RangeSet::new();
    let mut records: Vec<InjectionRecord> = Vec::new();
    let mut salvage = None;
    if let Some(path) = &shard.resume {
        let salvaged = Checkpoint::load_salvage(path).map_err(FlowError::Fault)?;
        let checkpoint = salvaged.checkpoint;
        salvage = salvaged.note;
        let bad = |what: &str| {
            FlowError::Fault(format!(
                "checkpoint {}: {what} does not match this campaign",
                path.display()
            ))
        };
        if checkpoint.kind != "faults" {
            return Err(bad("kind"));
        }
        if checkpoint.key != case.name {
            return Err(bad("design"));
        }
        if checkpoint.total != total {
            return Err(bad("total"));
        }
        let state = &checkpoint.state;
        let field = |key: &str| state.get(key).and_then(crate::telemetry::Json::as_str);
        if field("engine") != Some(options.engine.to_string().as_str()) {
            return Err(bad("engine"));
        }
        if state.get("seed").and_then(crate::telemetry::Json::as_u64) != Some(options.seed) {
            return Err(bad("seed"));
        }
        let ranges = checkpoint.completed.ranges();
        if ranges.len() > 1 || ranges.first().is_some_and(|&(s, _)| s != 0) {
            return Err(FlowError::Fault(format!(
                "checkpoint {}: completed set is not a prefix",
                path.display()
            )));
        }
        let list = state
            .get("records")
            .and_then(crate::telemetry::Json::as_array)
            .ok_or_else(|| bad("records"))?;
        if list.len() as u64 != checkpoint.completed.covered() {
            return Err(bad("record count"));
        }
        for entry in list {
            let get = |key: &str| {
                entry
                    .get(key)
                    .and_then(crate::telemetry::Json::as_str)
                    .ok_or_else(|| bad(key))
            };
            records.push(InjectionRecord {
                fault: FaultSpec::parse(get("fault")?).map_err(FlowError::Fault)?,
                outcome: InjectionOutcome::parse(get("outcome")?).map_err(FlowError::Fault)?,
                detail: get("detail")?.to_string(),
            });
        }
        // The stored faults must be the ones this invocation sampled.
        for (record, fault) in records.iter().zip(&sites) {
            if record.fault != *fault {
                return Err(bad("sampled site order"));
            }
        }
        skip = checkpoint.completed.clone();
    }
    let resumed = records.len() as u64;

    // Deterministic event stream: indices, outcomes, and order only —
    // wall-clock fields zeroed so shard count and resume cannot leak in.
    let events = options.events.clone();
    let emit_unit = |index: u64, record: &InjectionRecord| {
        if !events.is_enabled() {
            return;
        }
        events.emit(&crate::events::Event::FaultInjected {
            fault: record.fault.to_string(),
            class: record.fault.class().to_string(),
            index,
            total,
        });
        events.emit(&crate::events::Event::FaultClassified {
            fault: record.fault.to_string(),
            outcome: record.outcome.to_string(),
            detail: record.detail.clone(),
            wall_seconds: 0.0,
        });
        events.emit(&crate::events::Event::Heartbeat {
            done: index + 1,
            total,
            rate: 0.0,
            eta_seconds: 0.0,
            slowest: String::new(),
            slowest_seconds: 0.0,
        });
    };
    events.emit(&crate::events::Event::CampaignStarted {
        kind: "faults".to_string(),
        key: case.name.clone(),
        total,
    });
    for (index, record) in records.iter().enumerate() {
        emit_unit(index as u64, record);
    }

    let engine_is_batch = options.engine == Engine::Batch;
    let chunk = if engine_is_batch {
        eventsim::batchsim::LANES as u64
    } else {
        8
    };
    let sites = &sites;
    let prepared = &prepared;
    let golden = &golden;
    let faulty_options = &faulty_options;
    let run_site = |index: u64, fault: &FaultSpec| -> (InjectionOutcome, String) {
        let mut site_options = faulty_options.clone();
        site_options.faults = vec![fault.clone()];
        let result =
            catch_unwind(AssertUnwindSafe(|| prepared.run_with_golden(golden, &site_options)));
        classify_with_lane(result, engine_is_batch, index)
    };
    let worker = move |start: u64, end: u64| -> Vec<(InjectionOutcome, String)> {
        let chunk_sites = &sites[start as usize..end as usize];
        if engine_is_batch {
            let specs: Vec<crate::flow::BatchLaneSpec> = chunk_sites
                .iter()
                .map(|fault| crate::flow::BatchLaneSpec {
                    stimuli: case.stimuli.clone(),
                    faults: vec![fault.clone()],
                })
                .collect();
            let result =
                catch_unwind(AssertUnwindSafe(|| prepared.run_batch(&specs, faulty_options)));
            match result {
                Ok(Ok(report)) => report.lanes.iter().map(classify_lane).collect(),
                // Design-scoped error or panic: rerun the chunk's sites
                // one at a time so a crash stays attributed to one lane.
                Ok(Err(_)) | Err(_) => chunk_sites
                    .iter()
                    .enumerate()
                    .map(|(i, fault)| run_site(start + i as u64, fault))
                    .collect(),
            }
        } else {
            chunk_sites
                .iter()
                .enumerate()
                .map(|(i, fault)| run_site(start + i as u64, fault))
                .collect()
        }
    };

    let merged = RefCell::new(records);
    let save_error = RefCell::new(None::<String>);
    let outcome = crate::campaign::run_sharded(
        total,
        &skip,
        &ShardOptions {
            shards: shard.shards.max(1),
            chunk,
            checkpoint_every: if shard.checkpoint.is_some() {
                if shard.checkpoint_every == 0 {
                    chunk
                } else {
                    shard.checkpoint_every
                }
            } else {
                0
            },
            stop: shard.stop.clone(),
            sigint: shard.sigint,
        },
        worker,
        |index, (outcome, detail)| {
            let record = InjectionRecord {
                fault: sites[index as usize].clone(),
                outcome,
                detail,
            };
            emit_unit(index, &record);
            merged.borrow_mut().push(record);
        },
        |completed| {
            let Some(path) = &shard.checkpoint else { return };
            let checkpoint = faults_checkpoint(
                case,
                options,
                total,
                site_pool,
                clean_cycles,
                completed,
                &merged.borrow(),
            );
            if let Err(e) = checkpoint.save(path) {
                *save_error.borrow_mut() = Some(format!("cannot save {}: {e}", path.display()));
            }
        },
    );
    if let Some(message) = save_error.into_inner() {
        return Err(FlowError::Fault(message));
    }
    let injections = merged.into_inner();

    if !outcome.interrupted {
        let silent = injections
            .iter()
            .filter(|r| r.outcome == InjectionOutcome::Silent)
            .count() as u64;
        events.emit(&crate::events::Event::CampaignFinished {
            kind: "faults".to_string(),
            key: case.name.clone(),
            done: total,
            failed: silent,
            wall_seconds: 0.0,
        });
        if let Some(path) = &shard.checkpoint {
            let checkpoint = faults_checkpoint(
                case,
                options,
                total,
                site_pool,
                clean_cycles,
                &outcome.completed,
                &injections,
            );
            checkpoint
                .save(path)
                .map_err(|e| FlowError::Fault(format!("cannot save {}: {e}", path.display())))?;
        }
    }

    Ok(ShardedCampaignOutcome {
        report: CampaignReport {
            design: case.name.clone(),
            engine: options.engine,
            seed: options.seed,
            site_pool,
            clean_cycles,
            injections,
        },
        interrupted: outcome.interrupted,
        resumed,
        salvage,
    })
}

/// Builds the faults checkpoint document from merged state.
fn faults_checkpoint(
    case: &TestCase,
    options: &CampaignOptions,
    total: u64,
    site_pool: usize,
    clean_cycles: u64,
    completed: &crate::campaign::RangeSet,
    records: &[InjectionRecord],
) -> crate::campaign::Checkpoint {
    use crate::telemetry::Json;
    crate::campaign::Checkpoint {
        kind: "faults".to_string(),
        key: case.name.clone(),
        total,
        completed: completed.clone(),
        state: Json::obj([
            ("engine", options.engine.to_string().into()),
            ("seed", options.seed.into()),
            ("requested_sites", options.sites.into()),
            ("site_pool", site_pool.into()),
            ("clean_cycles", clean_cycles.into()),
            (
                "records",
                Json::Arr(
                    records
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("fault", r.fault.to_string().into()),
                                ("outcome", r.outcome.to_string().into()),
                                ("detail", r.detail.as_str().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

/// [`classify`] plus the batch fallback's lane tag (see [`lane_tagged`]).
fn classify_with_lane(
    result: std::thread::Result<Result<crate::flow::TestReport, FlowError>>,
    batch_fallback: bool,
    index: u64,
) -> (InjectionOutcome, String) {
    let (outcome, detail) = classify(result);
    let detail = if batch_fallback {
        lane_tagged(
            outcome,
            detail,
            (index % eventsim::batchsim::LANES as u64) as usize,
        )
    } else {
        detail
    };
    (outcome, detail)
}

/// Maps one faulty-run result onto an [`InjectionOutcome`].
fn classify(
    result: std::thread::Result<Result<crate::flow::TestReport, FlowError>>,
) -> (InjectionOutcome, String) {
    match result {
        Err(payload) => (InjectionOutcome::Crashed, panic_message(&payload)),
        Ok(Err(FlowError::Timeout { config, max_ticks })) => (
            InjectionOutcome::Hung,
            format!("configuration '{config}' exceeded {max_ticks} ticks"),
        ),
        Ok(Err(e)) => (InjectionOutcome::Detected, format!("flow error: {e}")),
        Ok(Ok(report)) => {
            if !report.fault_skips.is_empty() {
                (InjectionOutcome::Skipped, report.fault_skips.join("; "))
            } else if let Some(failure) = report.failure {
                (InjectionOutcome::Detected, failure)
            } else if let Some(first) = report.mismatches.first() {
                (
                    InjectionOutcome::Detected,
                    format!(
                        "{} mismatches, first {}[{}] golden {:?} sim {:?}",
                        report.mismatches.len(),
                        first.mem,
                        first.addr,
                        first.expected,
                        first.got
                    ),
                )
            } else {
                (InjectionOutcome::Silent, "verdict PASS".to_string())
            }
        }
    }
}

/// Maps one batch lane's verdict onto an [`InjectionOutcome`], with the
/// same detail strings [`classify`] derives from a sequential run.
fn classify_lane(lane: &crate::flow::LaneReport) -> (InjectionOutcome, String) {
    if let Some(detail) = &lane.timed_out {
        (InjectionOutcome::Hung, detail.clone())
    } else if let Some(e) = &lane.flow_error {
        (InjectionOutcome::Detected, format!("flow error: {e}"))
    } else if let Some(failure) = &lane.failure {
        (InjectionOutcome::Detected, failure.clone())
    } else if let Some(first) = lane.mismatches.first() {
        (
            InjectionOutcome::Detected,
            format!(
                "{} mismatches, first {}[{}] golden {:?} sim {:?}",
                lane.mismatches.len(),
                first.mem,
                first.addr,
                first.expected,
                first.got
            ),
        )
    } else {
        (InjectionOutcome::Silent, "verdict PASS".to_string())
    }
}

/// Renders a panic payload as text (the suite runner shares this).
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_specs_round_trip_through_parse() {
        let specs = [
            FaultSpec::StuckAt {
                signal: "t3_q".into(),
                bit: 7,
                value: true,
            },
            FaultSpec::StuckAt {
                signal: "done".into(),
                bit: 0,
                value: false,
            },
            FaultSpec::BitFlip {
                signal: "out_addr".into(),
                bit: 2,
                cycle: 41,
            },
            FaultSpec::SeuReg {
                signal: "t0_q".into(),
                bit: 15,
                cycle: 9,
            },
            FaultSpec::SramCorrupt {
                mem: "img".into(),
                addr: 63,
                bit: 30,
            },
        ];
        for spec in specs {
            let rendered = spec.to_string();
            assert_eq!(FaultSpec::parse(&rendered).unwrap(), spec, "{rendered}");
        }
        // `.BIT` defaults to 0 for stuck-at.
        assert_eq!(
            FaultSpec::parse("stuck1:done").unwrap(),
            FaultSpec::StuckAt {
                signal: "done".into(),
                bit: 0,
                value: true
            }
        );
        assert!(FaultSpec::parse("melt:everything").is_err());
        assert!(FaultSpec::parse("flip:sig.1").is_err(), "flip needs @cycle");
    }

    #[test]
    fn lane_tag_marks_only_crashes() {
        let tagged = lane_tagged(InjectionOutcome::Crashed, "boom".to_string(), 17);
        assert_eq!(tagged, "[lane 17] boom");
        let silent = lane_tagged(InjectionOutcome::Silent, "verdict PASS".to_string(), 17);
        assert_eq!(silent, "verdict PASS");
    }

    #[test]
    fn injection_outcomes_round_trip_through_parse() {
        for outcome in [
            InjectionOutcome::Detected,
            InjectionOutcome::Silent,
            InjectionOutcome::Hung,
            InjectionOutcome::Skipped,
            InjectionOutcome::Crashed,
        ] {
            assert_eq!(
                InjectionOutcome::parse(&outcome.to_string()).unwrap(),
                outcome
            );
        }
        assert!(InjectionOutcome::parse("shrugged").is_err());
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }
}
