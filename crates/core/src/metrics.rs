//! Design and run metrics — the columns of the paper's Table I.

use std::fmt;

/// Metrics of one configuration (one row group of Table I has one line
/// per configuration; FDCT2 has two).
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigMetrics {
    /// Configuration name.
    pub name: String,
    /// `loXML FSM`: lines of the FSM XML description.
    pub lo_xml_fsm: usize,
    /// `loXML datapath`: lines of the datapath XML description.
    pub lo_xml_datapath: usize,
    /// `loJava FSM`: lines of the generated behavioral control-unit
    /// source (our Java-flavoured rendering).
    pub lo_behav_fsm: usize,
    /// Datapath functional units.
    pub operators: usize,
    /// Control-FSM states.
    pub fsm_states: usize,
    /// Clock cycles simulated.
    pub cycles: u64,
    /// Kernel events processed.
    pub events: u64,
    /// Wall-clock seconds spent simulating this configuration.
    pub sim_seconds: f64,
}

/// Metrics of a whole design run (one Table I row group).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignMetrics {
    /// Design (example) name.
    pub design: String,
    /// `loJava`: lines of the input source program.
    pub lo_java: usize,
    /// Per-configuration metrics, in RTG order.
    pub configs: Vec<ConfigMetrics>,
    /// Wall-clock seconds of the golden software execution.
    pub golden_seconds: f64,
}

impl DesignMetrics {
    /// Total simulation seconds across configurations.
    pub fn total_sim_seconds(&self) -> f64 {
        self.configs.iter().map(|c| c.sim_seconds).sum()
    }

    /// Total operators across configurations.
    pub fn total_operators(&self) -> usize {
        self.configs.iter().map(|c| c.operators).sum()
    }

    /// Total cycles across configurations.
    pub fn total_cycles(&self) -> u64 {
        self.configs.iter().map(|c| c.cycles).sum()
    }
}

/// Renders design metrics as the paper's Table I (one line per
/// configuration, design totals in the first line's `loJava` column).
///
/// ```text
/// example   loJava  loXML-FSM  loXML-dp  loBehav-FSM  operators  sim-time(s)
/// fdct1        131        512      1708         1175        169       0.012
/// ```
pub fn render_table1(rows: &[DesignMetrics]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>10} {:>9} {:>12} {:>10} {:>12}\n",
        "example", "loJava", "loXML-FSM", "loXML-dp", "loBehav-FSM", "operators", "sim-time(s)"
    ));
    for design in rows {
        for (i, config) in design.configs.iter().enumerate() {
            let (name, lo_java) = if i == 0 {
                (design.design.as_str(), design.lo_java.to_string())
            } else {
                ("", String::new())
            };
            out.push_str(&format!(
                "{:<12} {:>7} {:>10} {:>9} {:>12} {:>10} {:>12.4}\n",
                name,
                lo_java,
                config.lo_xml_fsm,
                config.lo_xml_datapath,
                config.lo_behav_fsm,
                config.operators,
                config.sim_seconds,
            ));
        }
    }
    out
}

/// [`render_table1`] with the measurement columns the paper's table
/// omits: golden-execution seconds, simulated clock cycles, and kernel
/// events. Used by `fpgatest test --verbose`.
///
/// ```text
/// example   loJava ... operators  golden(s)  cycles  events  sim-time(s)
/// ```
pub fn render_table1_ext(rows: &[DesignMetrics]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>10} {:>9} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12}\n",
        "example",
        "loJava",
        "loXML-FSM",
        "loXML-dp",
        "loBehav-FSM",
        "operators",
        "golden(s)",
        "cycles",
        "events",
        "sim-time(s)"
    ));
    for design in rows {
        for (i, config) in design.configs.iter().enumerate() {
            let (name, lo_java, golden) = if i == 0 {
                (
                    design.design.as_str(),
                    design.lo_java.to_string(),
                    format!("{:.4}", design.golden_seconds),
                )
            } else {
                ("", String::new(), String::new())
            };
            out.push_str(&format!(
                "{:<12} {:>7} {:>10} {:>9} {:>12} {:>10} {:>10} {:>10} {:>12} {:>12.4}\n",
                name,
                lo_java,
                config.lo_xml_fsm,
                config.lo_xml_datapath,
                config.lo_behav_fsm,
                config.operators,
                golden,
                config.cycles,
                config.events,
                config.sim_seconds,
            ));
        }
    }
    out
}

impl fmt::Display for DesignMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&render_table1(std::slice::from_ref(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DesignMetrics {
        DesignMetrics {
            design: "fdct2".into(),
            lo_java: 131,
            configs: vec![
                ConfigMetrics {
                    name: "fdct2_c0".into(),
                    lo_xml_fsm: 258,
                    lo_xml_datapath: 860,
                    lo_behav_fsm: 667,
                    operators: 90,
                    fsm_states: 40,
                    cycles: 1000,
                    events: 50_000,
                    sim_seconds: 0.5,
                },
                ConfigMetrics {
                    name: "fdct2_c1".into(),
                    lo_xml_fsm: 256,
                    lo_xml_datapath: 891,
                    lo_behav_fsm: 606,
                    operators: 90,
                    fsm_states: 41,
                    cycles: 1100,
                    events: 51_000,
                    sim_seconds: 0.4,
                },
            ],
            golden_seconds: 0.001,
        }
    }

    #[test]
    fn totals() {
        let m = sample();
        assert_eq!(m.total_operators(), 180);
        assert_eq!(m.total_cycles(), 2100);
        assert!((m.total_sim_seconds() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn table_layout_matches_paper_shape() {
        let text = render_table1(&[sample()]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // header + two configuration rows
        assert!(lines[0].contains("loXML-FSM"));
        assert!(lines[1].starts_with("fdct2"));
        assert!(lines[1].contains("131"));
        // Continuation row leaves design columns blank.
        assert!(lines[2].starts_with(' '));
        assert!(lines[2].contains("891"));
    }

    #[test]
    fn display_delegates_to_table() {
        assert!(sample().to_string().contains("fdct2"));
    }

    #[test]
    fn extended_table_adds_measurement_columns() {
        let text = render_table1_ext(&[sample()]);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for header in ["golden(s)", "cycles", "events"] {
            assert!(lines[0].contains(header), "{header} missing: {}", lines[0]);
        }
        assert!(lines[1].contains("0.0010")); // golden_seconds on first row only
        assert!(lines[1].contains("50000"));
        assert!(!lines[2].contains("0.0010"));
        assert!(lines[2].contains("1100"));
    }
}
