//! Memory-content and stimulus files.
//!
//! The paper stores memory contents and I/O data in files shared by the
//! golden software execution and the simulation. The format is
//! line-oriented text:
//!
//! ```text
//! # input image, 64 pixels
//! @mem frame
//! @size 64
//! 0: 12
//! 1: -3
//! 5: 0x1f      # hex accepted
//! ```
//!
//! `@mem`/`@size` headers are optional; addresses may be sparse (words
//! not listed stay uninitialized). [`emit`] writes the canonical form.

use std::error::Error;
use std::fmt;

/// A memory image: one optional word per address, `None` =
/// uninitialized. (Re-exported alias of the interpreter's image type.)
pub type MemImage = Vec<Option<i64>>;

/// Error produced when parsing a malformed stimulus file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseStimulusError {
    message: String,
    line: usize,
}

impl ParseStimulusError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        ParseStimulusError {
            message: message.into(),
            line,
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseStimulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (line {})", self.message, self.line)
    }
}

impl Error for ParseStimulusError {}

/// A parsed stimulus file.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Stimulus {
    /// Optional `@mem` header naming the target memory.
    pub mem: Option<String>,
    /// Optional `@size` header (validated against the design on load).
    pub size: Option<usize>,
    /// `(address, value)` pairs in file order.
    pub words: Vec<(usize, i64)>,
}

impl Stimulus {
    /// Builds a dense stimulus covering `values` from address 0.
    pub fn from_values<I: IntoIterator<Item = i64>>(values: I) -> Self {
        Stimulus {
            mem: None,
            size: None,
            words: values.into_iter().enumerate().collect(),
        }
    }

    /// Applies the stimulus to an image.
    ///
    /// # Errors
    ///
    /// Returns a message when an address is outside the image or the
    /// `@size` header disagrees with the image length.
    pub fn apply(&self, image: &mut MemImage) -> Result<(), String> {
        if let Some(size) = self.size {
            if size != image.len() {
                return Err(format!(
                    "stimulus declares size {size}, memory has {}",
                    image.len()
                ));
            }
        }
        let size = image.len();
        for &(addr, value) in &self.words {
            let slot = image
                .get_mut(addr)
                .ok_or_else(|| format!("address {addr} outside memory of size {size}"))?;
            *slot = Some(value);
        }
        Ok(())
    }
}

/// Parses stimulus text.
///
/// # Errors
///
/// Returns [`ParseStimulusError`] for malformed headers, addresses, or
/// values.
pub fn parse(text: &str) -> Result<Stimulus, ParseStimulusError> {
    let mut stim = Stimulus::default();
    for (index, raw) in text.lines().enumerate() {
        let lineno = index + 1;
        let line = match raw.find('#') {
            Some(i) => &raw[..i],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("@mem") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(ParseStimulusError::new("@mem needs a name", lineno));
            }
            stim.mem = Some(name.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("@size") {
            let size = rest
                .trim()
                .parse()
                .map_err(|_| ParseStimulusError::new("@size needs an integer", lineno))?;
            stim.size = Some(size);
            continue;
        }
        let (addr_part, value_part) = line.split_once(':').ok_or_else(|| {
            ParseStimulusError::new("expected 'address: value'", lineno)
        })?;
        let addr: usize = addr_part.trim().parse().map_err(|_| {
            ParseStimulusError::new(format!("bad address '{}'", addr_part.trim()), lineno)
        })?;
        let value = parse_value(value_part.trim())
            .ok_or_else(|| ParseStimulusError::new(format!("bad value '{}'", value_part.trim()), lineno))?;
        stim.words.push((addr, value));
    }
    Ok(stim)
}

fn parse_value(text: &str) -> Option<i64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(hex) = text.strip_prefix("-0x") {
        i64::from_str_radix(hex, 16).ok().map(|v| -v)
    } else {
        text.parse().ok()
    }
}

/// Renders a memory image in the canonical file form (initialized words
/// only, decimal, with headers).
pub fn emit(mem_name: &str, image: &MemImage) -> String {
    let mut out = String::new();
    out.push_str(&format!("@mem {mem_name}\n@size {}\n", image.len()));
    for (addr, word) in image.iter().enumerate() {
        if let Some(value) = word {
            out.push_str(&format!("{addr}: {value}\n"));
        }
    }
    out
}

/// Renders an image memory as a text PGM (portable graymap), the
/// substitution for the paper's Java GUI image display. Uninitialized
/// pixels render as 0; values are clamped to `0..=maxval`.
pub fn to_pgm(image: &MemImage, width: usize, maxval: i64) -> String {
    assert!(width > 0, "image width must be positive");
    let height = image.len().div_ceil(width);
    let mut out = format!("P2\n{width} {height}\n{maxval}\n");
    for row in 0..height {
        let mut line = String::new();
        for col in 0..width {
            let value = image
                .get(row * width + col)
                .copied()
                .flatten()
                .unwrap_or(0)
                .clamp(0, maxval);
            if !line.is_empty() {
                line.push(' ');
            }
            line.push_str(&value.to_string());
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_featured_file() {
        let text = "# comment\n@mem frame\n@size 8\n0: 5\n3: -7\n4: 0x10  # hex\n";
        let stim = parse(text).unwrap();
        assert_eq!(stim.mem.as_deref(), Some("frame"));
        assert_eq!(stim.size, Some(8));
        assert_eq!(stim.words, vec![(0, 5), (3, -7), (4, 16)]);
    }

    #[test]
    fn apply_and_sparse_semantics() {
        let stim = parse("1: 9\n3: 4\n").unwrap();
        let mut image = vec![None; 4];
        stim.apply(&mut image).unwrap();
        assert_eq!(image, vec![None, Some(9), None, Some(4)]);
    }

    #[test]
    fn apply_validates_bounds_and_size() {
        let stim = parse("9: 1\n").unwrap();
        let mut image = vec![None; 4];
        assert!(stim.apply(&mut image).unwrap_err().contains("address 9"));

        let stim = parse("@size 8\n0: 1\n").unwrap();
        assert!(stim.apply(&mut image).unwrap_err().contains("size 8"));
    }

    #[test]
    fn parse_errors_carry_lines() {
        assert_eq!(parse("0 5\n").unwrap_err().line(), 1);
        assert_eq!(parse("# ok\nx: 5\n").unwrap_err().line(), 2);
        assert_eq!(parse("0: pancake\n").unwrap_err().line(), 1);
        assert_eq!(parse("@size big\n").unwrap_err().line(), 1);
        assert_eq!(parse("@mem \n").unwrap_err().line(), 1);
    }

    #[test]
    fn emit_parse_roundtrip() {
        let image = vec![Some(1), None, Some(-5), Some(1000)];
        let text = emit("m", &image);
        let stim = parse(&text).unwrap();
        assert_eq!(stim.mem.as_deref(), Some("m"));
        let mut back = vec![None; 4];
        stim.apply(&mut back).unwrap();
        assert_eq!(back, image);
    }

    #[test]
    fn from_values_is_dense() {
        let stim = Stimulus::from_values([7, 8, 9]);
        let mut image = vec![None; 3];
        stim.apply(&mut image).unwrap();
        assert_eq!(image, vec![Some(7), Some(8), Some(9)]);
    }

    #[test]
    fn pgm_rendering() {
        let image = vec![Some(0), Some(255), None, Some(999), Some(-4), Some(7)];
        let pgm = to_pgm(&image, 3, 255);
        let lines: Vec<&str> = pgm.lines().collect();
        assert_eq!(lines[0], "P2");
        assert_eq!(lines[1], "3 2");
        assert_eq!(lines[2], "255");
        assert_eq!(lines[3], "0 255 0");
        assert_eq!(lines[4], "255 0 7");
    }
}
