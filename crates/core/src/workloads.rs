//! The paper's evaluation workloads: the fast DCT (FDCT) over 8×8 image
//! blocks and a Hamming(7,4) decoder, plus deterministic stimulus
//! generators and host-side reference math used by tests.
//!
//! The FDCT is the classic integer "islow" fast DCT (13-bit fixed-point
//! constants, two passes: rows then columns), written in the source
//! language. The two passes are two top-level loops, so compiling with
//! `partitions = 2` splits exactly there — the paper's FDCT2. Three
//! SRAMs hold the input, intermediate, and output images, matching the
//! paper ("both implementations use three SRAMs to store input, output,
//! and intermediate images").

/// Number of pixels in the paper's primary FDCT experiment (64 blocks).
pub const FDCT_BASE_PIXELS: usize = 4096;

/// The FDCT source program for an image of `pixels` pixels.
///
/// `pixels` must be a positive multiple of 64 (whole 8×8 blocks); blocks
/// are stored consecutively, row-major within each block.
///
/// # Panics
///
/// Panics if `pixels` is zero or not a multiple of 64.
pub fn fdct_source(pixels: usize) -> String {
    assert!(
        pixels > 0 && pixels.is_multiple_of(64),
        "pixel count {pixels} is not a positive multiple of 64"
    );
    let blocks = pixels / 64;
    format!(
        r#"// fast DCT (integer islow): 8x8 blocks, two passes
mem img[{pixels}];
mem tmp[{pixels}];
mem out[{pixels}];
void main() {{
    // pass 1: 1-D DCT over the rows of every block
    int b;
    for (b = 0; b < {blocks}; b = b + 1) {{
        int r;
        for (r = 0; r < 8; r = r + 1) {{
            int base = b * 64 + r * 8;
            int x0 = img[base];
            int x1 = img[base + 1];
            int x2 = img[base + 2];
            int x3 = img[base + 3];
            int x4 = img[base + 4];
            int x5 = img[base + 5];
            int x6 = img[base + 6];
            int x7 = img[base + 7];
            int t0 = x0 + x7;
            int t7 = x0 - x7;
            int t1 = x1 + x6;
            int t6 = x1 - x6;
            int t2 = x2 + x5;
            int t5 = x2 - x5;
            int t3 = x3 + x4;
            int t4 = x3 - x4;
            int t10 = t0 + t3;
            int t13 = t0 - t3;
            int t11 = t1 + t2;
            int t12 = t1 - t2;
            tmp[base] = (t10 + t11) << 2;
            tmp[base + 4] = (t10 - t11) << 2;
            int z1 = (t12 + t13) * 4433;
            tmp[base + 2] = (z1 + t13 * 6270 + 1024) >> 11;
            tmp[base + 6] = (z1 - t12 * 15137 + 1024) >> 11;
            int za = t4 + t7;
            int zb = t5 + t6;
            int zc = t4 + t6;
            int zd = t5 + t7;
            int z5 = (zc + zd) * 9633;
            int u4 = t4 * 2446;
            int u5 = t5 * 16819;
            int u6 = t6 * 25172;
            int u7 = t7 * 12299;
            int v1 = 0 - za * 7373;
            int v2 = 0 - zb * 20995;
            int v3 = (0 - zc * 16069) + z5;
            int v4 = (0 - zd * 3196) + z5;
            tmp[base + 7] = (u4 + v1 + v3 + 1024) >> 11;
            tmp[base + 5] = (u5 + v2 + v4 + 1024) >> 11;
            tmp[base + 3] = (u6 + v2 + v3 + 1024) >> 11;
            tmp[base + 1] = (u7 + v1 + v4 + 1024) >> 11;
        }}
    }}
    // pass 2: 1-D DCT over the columns, with final descale
    int c;
    for (c = 0; c < {blocks}; c = c + 1) {{
        int k;
        for (k = 0; k < 8; k = k + 1) {{
            int cbase = c * 64 + k;
            int y0 = tmp[cbase];
            int y1 = tmp[cbase + 8];
            int y2 = tmp[cbase + 16];
            int y3 = tmp[cbase + 24];
            int y4 = tmp[cbase + 32];
            int y5 = tmp[cbase + 40];
            int y6 = tmp[cbase + 48];
            int y7 = tmp[cbase + 56];
            int s0 = y0 + y7;
            int s7 = y0 - y7;
            int s1 = y1 + y6;
            int s6 = y1 - y6;
            int s2 = y2 + y5;
            int s5 = y2 - y5;
            int s3 = y3 + y4;
            int s4 = y3 - y4;
            int s10 = s0 + s3;
            int s13 = s0 - s3;
            int s11 = s1 + s2;
            int s12 = s1 - s2;
            out[cbase] = (s10 + s11 + 2) >> 2;
            out[cbase + 32] = (s10 - s11 + 2) >> 2;
            int w1 = (s12 + s13) * 4433;
            out[cbase + 16] = (w1 + s13 * 6270 + 16384) >> 15;
            out[cbase + 48] = (w1 - s12 * 15137 + 16384) >> 15;
            int wa = s4 + s7;
            int wb = s5 + s6;
            int wc = s4 + s6;
            int wd = s5 + s7;
            int w5 = (wc + wd) * 9633;
            int p4 = s4 * 2446;
            int p5 = s5 * 16819;
            int p6 = s6 * 25172;
            int p7 = s7 * 12299;
            int q1 = 0 - wa * 7373;
            int q2 = 0 - wb * 20995;
            int q3 = (0 - wc * 16069) + w5;
            int q4 = (0 - wd * 3196) + w5;
            out[cbase + 56] = (p4 + q1 + q3 + 16384) >> 15;
            out[cbase + 40] = (p5 + q2 + q4 + 16384) >> 15;
            out[cbase + 24] = (p6 + q2 + q3 + 16384) >> 15;
            out[cbase + 8] = (p7 + q1 + q4 + 16384) >> 15;
        }}
    }}
}}
"#
    )
}

/// The Hamming(7,4) decoder source: corrects single-bit errors in `words`
/// 7-bit codewords and extracts the 4 data bits.
///
/// Bit layout (LSB-first positions 1..=7): parity at 1, 2, 4; data at
/// 3, 5, 6, 7.
///
/// # Panics
///
/// Panics if `words` is zero.
pub fn hamming_source(words: usize) -> String {
    assert!(words > 0, "need at least one codeword");
    format!(
        r#"// Hamming(7,4) decoder with single-bit correction
mem code[{words}];
mem data[{words}];
void main() {{
    int i;
    for (i = 0; i < {words}; i = i + 1) {{
        int w = code[i];
        int b1 = w & 1;
        int b2 = (w >> 1) & 1;
        int b3 = (w >> 2) & 1;
        int b4 = (w >> 3) & 1;
        int b5 = (w >> 4) & 1;
        int b6 = (w >> 5) & 1;
        int b7 = (w >> 6) & 1;
        int s1 = b1 ^ b3 ^ b5 ^ b7;
        int s2 = b2 ^ b3 ^ b6 ^ b7;
        int s3 = b4 ^ b5 ^ b6 ^ b7;
        int pos = s1 + s2 * 2 + s3 * 4;
        if (pos != 0) {{
            w = w ^ (1 << (pos - 1));
        }}
        int d0 = (w >> 2) & 1;
        int d1 = (w >> 4) & 1;
        int d2 = (w >> 5) & 1;
        int d3 = (w >> 6) & 1;
        data[i] = d0 + d1 * 2 + d2 * 4 + d3 * 8;
    }}
}}
"#
    )
}

/// An `n x n` integer matrix multiply (`c = a * b`), row-major — a
/// triple-nested-loop workload exercising deep loop nests and
/// 2-D addressing.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn matmul_source(n: usize) -> String {
    assert!(n > 0, "matrix dimension must be positive");
    let cells = n * n;
    format!(
        r#"// {n}x{n} integer matrix multiply
mem a[{cells}];
mem b[{cells}];
mem c[{cells}];
void main() {{
    int i;
    for (i = 0; i < {n}; i = i + 1) {{
        int j;
        for (j = 0; j < {n}; j = j + 1) {{
            int acc = 0;
            int k;
            for (k = 0; k < {n}; k = k + 1) {{
                acc = acc + a[i * {n} + k] * b[k * {n} + j];
            }}
            c[i * {n} + j] = acc;
        }}
    }}
}}
"#
    )
}

/// Host reference for [`matmul_source`] at the default 16-bit design
/// width (accumulation wraps at every step, as in the generated design).
pub fn matmul_reference(a: &[i64], b: &[i64], n: usize) -> Vec<i64> {
    let wrap16 = |v: i64| (v as i16) as i64;
    let mut c = vec![0i64; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc: i64 = 0;
            for k in 0..n {
                acc = wrap16(acc + wrap16(a[i * n + k] * b[k * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// An in-place bubble sort over one SRAM — heavy **data-dependent**
/// control flow (the swap branch depends on memory contents), the
/// sharpest test of condition handling in generated control units.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn sort_source(n: usize) -> String {
    assert!(n > 0, "need at least one element");
    format!(
        r#"// in-place bubble sort with data-dependent swaps
mem data[{n}];
void main() {{
    int i;
    for (i = 0; i < {n} - 1; i = i + 1) {{
        int j;
        for (j = 0; j < {n} - 1 - i; j = j + 1) {{
            int x = data[j];
            int y = data[j + 1];
            if (y < x) {{
                data[j] = y;
                data[j + 1] = x;
            }}
        }}
    }}
}}
"#
    )
}

/// Deterministic pseudo-random grayscale image (values `0..=255`),
/// xorshift-based so every run and machine agrees.
pub fn test_image(pixels: usize) -> Vec<i64> {
    let mut state = 0x2545_F491_4F6C_DD1Du64;
    (0..pixels)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 256) as i64
        })
        .collect()
}

/// Encodes a 4-bit nibble as a Hamming(7,4) codeword (LSB-first layout
/// matching [`hamming_source`]).
pub fn hamming_encode(nibble: u8) -> u8 {
    let d = [
        nibble & 1,
        (nibble >> 1) & 1,
        (nibble >> 2) & 1,
        (nibble >> 3) & 1,
    ];
    // positions: 3 -> d0, 5 -> d1, 6 -> d2, 7 -> d3
    let p1 = d[0] ^ d[1] ^ d[3]; // covers 1,3,5,7
    let p2 = d[0] ^ d[2] ^ d[3]; // covers 2,3,6,7
    let p4 = d[1] ^ d[2] ^ d[3]; // covers 4,5,6,7
    p1 | (p2 << 1) | (d[0] << 2) | (p4 << 3) | (d[1] << 4) | (d[2] << 5) | (d[3] << 6)
}

/// Generates `words` codewords carrying the nibble sequence `0,1,2,…`,
/// flipping one deterministic bit in every third word (the error pattern
/// the decoder must correct).
pub fn hamming_codewords(words: usize) -> Vec<i64> {
    (0..words)
        .map(|i| {
            let mut w = hamming_encode((i % 16) as u8);
            if i % 3 == 0 {
                w ^= 1 << (i % 7);
            }
            w as i64
        })
        .collect()
}

/// The nibbles [`hamming_codewords`] encodes (the expected decoder
/// output).
pub fn hamming_expected(words: usize) -> Vec<i64> {
    (0..words).map(|i| (i % 16) as i64).collect()
}

/// Host-side reference of the same integer FDCT (used by tests to check
/// the *algorithm*, independent of compiler and simulator).
pub fn fdct_reference(image: &[i64]) -> Vec<i64> {
    assert_eq!(image.len() % 64, 0);
    let mut tmp = vec![0i64; image.len()];
    let mut out = vec![0i64; image.len()];
    let wrap = |v: i64| -> i64 {
        // width-32 two's-complement wrap, matching the design width used
        // for FDCT flows.
        (v as i32) as i64
    };
    for b in 0..image.len() / 64 {
        for r in 0..8 {
            let base = b * 64 + r * 8;
            let x: Vec<i64> = (0..8).map(|j| image[base + j]).collect();
            let row = fdct_1d(&x, 2, 11, 1024);
            for (j, v) in row.into_iter().enumerate() {
                tmp[base + j] = wrap(v);
            }
        }
        for k in 0..8 {
            let cbase = b * 64 + k;
            let y: Vec<i64> = (0..8).map(|j| tmp[cbase + j * 8]).collect();
            let col = fdct_1d(&y, -2, 15, 16384);
            for (j, v) in col.into_iter().enumerate() {
                out[cbase + j * 8] = wrap(v);
            }
        }
    }
    out
}

/// One 1-D islow butterfly. `even_shift` > 0 shifts the even terms left,
/// < 0 shifts them right with rounding (`+2 >> 2`).
fn fdct_1d(x: &[i64], even_shift: i32, odd_shift: u32, odd_round: i64) -> Vec<i64> {
    let (t0, t7) = (x[0] + x[7], x[0] - x[7]);
    let (t1, t6) = (x[1] + x[6], x[1] - x[6]);
    let (t2, t5) = (x[2] + x[5], x[2] - x[5]);
    let (t3, t4) = (x[3] + x[4], x[3] - x[4]);
    let (t10, t13) = (t0 + t3, t0 - t3);
    let (t11, t12) = (t1 + t2, t1 - t2);
    let even = |v: i64| -> i64 {
        if even_shift >= 0 {
            v << even_shift
        } else {
            (v + 2) >> (-even_shift) as u32
        }
    };
    let mut y = vec![0i64; 8];
    y[0] = even(t10 + t11);
    y[4] = even(t10 - t11);
    let z1 = (t12 + t13) * 4433;
    y[2] = (z1 + t13 * 6270 + odd_round) >> odd_shift;
    y[6] = (z1 - t12 * 15137 + odd_round) >> odd_shift;
    let (za, zb, zc, zd) = (t4 + t7, t5 + t6, t4 + t6, t5 + t7);
    let z5 = (zc + zd) * 9633;
    let (u4, u5, u6, u7) = (t4 * 2446, t5 * 16819, t6 * 25172, t7 * 12299);
    let v1 = -za * 7373;
    let v2 = -zb * 20995;
    let v3 = -zc * 16069 + z5;
    let v4 = -zd * 3196 + z5;
    y[7] = (u4 + v1 + v3 + odd_round) >> odd_shift;
    y[5] = (u5 + v2 + v4 + odd_round) >> odd_shift;
    y[3] = (u6 + v2 + v3 + odd_round) >> odd_shift;
    y[1] = (u7 + v1 + v4 + odd_round) >> odd_shift;
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use nenya::interp::{blank_images, execute};
    use nenya::{compile, lower, CompileOptions};

    #[test]
    fn fdct_source_parses_and_counts_lines() {
        let src = fdct_source(FDCT_BASE_PIXELS);
        let program = nenya::lang::parse(&src).unwrap();
        assert_eq!(program.mems.len(), 3);
        // The paper reports 138 lines of Java for the FDCT; our rendition
        // is the same order of magnitude.
        assert!(
            (100..=160).contains(&program.source_lines),
            "loJava = {}",
            program.source_lines
        );
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn fdct_rejects_partial_blocks() {
        let _ = fdct_source(100);
    }

    #[test]
    fn fdct_interpreter_matches_host_reference() {
        let src = fdct_source(64); // one block, fast
        let prog = lower(&nenya::lang::parse(&src).unwrap(), "fdct", 32).unwrap();
        let mut mems = blank_images(&prog);
        let image = test_image(64);
        for (addr, &v) in image.iter().enumerate() {
            mems[0][addr] = Some(v);
        }
        execute(&prog, &mut mems, 100_000_000).unwrap();
        let expected = fdct_reference(&image);
        let got: Vec<i64> = mems[2].iter().map(|w| w.unwrap()).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn fdct_dc_coefficient_of_flat_block() {
        // A flat block has all energy in DC: out[0] = 64 * value (the
        // islow transform scales by 8 per pass), all ACs zero.
        let src = fdct_source(64);
        let prog = lower(&nenya::lang::parse(&src).unwrap(), "fdct", 32).unwrap();
        let mut mems = blank_images(&prog);
        for word in mems[0].iter_mut() {
            *word = Some(100);
        }
        execute(&prog, &mut mems, 100_000_000).unwrap();
        assert_eq!(mems[2][0], Some(100 * 64));
        for (addr, word) in mems[2].iter().enumerate().skip(1) {
            assert_eq!(*word, Some(0), "AC coefficient {addr}");
        }
    }

    #[test]
    fn fdct_partitions_cleanly_in_two() {
        let design = compile(
            "fdct2",
            &fdct_source(64),
            &CompileOptions {
                width: 32,
                partitions: 2,
                ..CompileOptions::default()
            },
        )
        .unwrap();
        assert_eq!(design.configs.len(), 2);
        // The cut falls between the two passes: config 0 writes tmp,
        // config 1 reads tmp and writes out.
        let ops0 = design.configs[0].datapath.operator_count();
        let ops1 = design.configs[1].datapath.operator_count();
        let total = design.operator_count();
        assert!(ops0 > total / 3 && ops1 > total / 3, "balanced: {ops0} vs {ops1}");
        // No scalars cross the cut (loop variables are pass-local).
        assert!(!design.mems.iter().any(|m| m.name == "__xfer"));
    }

    #[test]
    fn hamming_roundtrip_with_and_without_errors() {
        for nibble in 0..16u8 {
            let clean = hamming_encode(nibble);
            // Decode every single-bit corruption back to the nibble.
            for bit in 0..7 {
                let corrupted = clean ^ (1 << bit);
                assert_eq!(
                    decode_host(corrupted),
                    nibble,
                    "nibble {nibble} bit {bit}"
                );
            }
            assert_eq!(decode_host(clean), nibble);
        }
    }

    /// Host-side mirror of the decoder used for test validation.
    fn decode_host(w: u8) -> u8 {
        let bit = |w: u8, i: u8| (w >> i) & 1;
        let s1 = bit(w, 0) ^ bit(w, 2) ^ bit(w, 4) ^ bit(w, 6);
        let s2 = bit(w, 1) ^ bit(w, 2) ^ bit(w, 5) ^ bit(w, 6);
        let s3 = bit(w, 3) ^ bit(w, 4) ^ bit(w, 5) ^ bit(w, 6);
        let pos = s1 + s2 * 2 + s3 * 4;
        let w = if pos != 0 { w ^ (1 << (pos - 1)) } else { w };
        bit(w, 2) | bit(w, 4) << 1 | bit(w, 5) << 2 | bit(w, 6) << 3
    }

    #[test]
    fn hamming_interpreter_decodes_generated_words() {
        let words = 32;
        let src = hamming_source(words);
        let program = nenya::lang::parse(&src).unwrap();
        // The paper reports 45 lines of Java for the Hamming decoder.
        assert!(
            (25..=60).contains(&program.source_lines),
            "loJava = {}",
            program.source_lines
        );
        let prog = lower(&program, "hamming", 16).unwrap();
        let mut mems = blank_images(&prog);
        for (addr, &v) in hamming_codewords(words).iter().enumerate() {
            mems[0][addr] = Some(v);
        }
        execute(&prog, &mut mems, 10_000_000).unwrap();
        let got: Vec<i64> = mems[1].iter().map(|w| w.unwrap()).collect();
        assert_eq!(got, hamming_expected(words));
    }

    #[test]
    fn matmul_interpreter_matches_host_reference() {
        let n = 4;
        let src = matmul_source(n);
        let prog = lower(&nenya::lang::parse(&src).unwrap(), "mm", 16).unwrap();
        let a: Vec<i64> = (0..(n * n) as i64).map(|v| v - 5).collect();
        let b: Vec<i64> = (0..(n * n) as i64).map(|v| 3 - v).collect();
        let mut mems = blank_images(&prog);
        for (addr, &v) in a.iter().enumerate() {
            mems[0][addr] = Some(v);
        }
        for (addr, &v) in b.iter().enumerate() {
            mems[1][addr] = Some(v);
        }
        execute(&prog, &mut mems, 10_000_000).unwrap();
        let got: Vec<i64> = mems[2].iter().map(|w| w.unwrap()).collect();
        assert_eq!(got, matmul_reference(&a, &b, n));
    }

    #[test]
    fn sort_interpreter_sorts() {
        let n = 12;
        let src = sort_source(n);
        let prog = lower(&nenya::lang::parse(&src).unwrap(), "sort", 16).unwrap();
        let mut values: Vec<i64> = (0..n as i64).map(|v| (v * 37 + 11) % 50 - 20).collect();
        let mut mems = blank_images(&prog);
        for (addr, &v) in values.iter().enumerate() {
            mems[0][addr] = Some(v);
        }
        execute(&prog, &mut mems, 10_000_000).unwrap();
        values.sort_unstable();
        let got: Vec<i64> = mems[0].iter().map(|w| w.unwrap()).collect();
        assert_eq!(got, values);
    }

    #[test]
    fn test_image_is_deterministic_and_in_range() {
        let a = test_image(256);
        let b = test_image(256);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (0..=255).contains(&v)));
        // Not constant.
        assert!(a.iter().any(|&v| v != a[0]));
    }
}
