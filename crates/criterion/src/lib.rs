//! A vendored, zero-dependency stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crates-io
//! `criterion` cannot be fetched. This crate keeps the workspace's
//! `cargo bench` targets compiling and running: it implements the API
//! subset the bench files use (`Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `sample_size`, `b.iter`) with plain wall-clock timing and a compact
//! mean/min/max report per benchmark — no statistics engine, no HTML
//! reports, no comparison against saved baselines.

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's conventional display form.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Throughput annotation; printed alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_count: u64,
}

impl Bencher {
    /// Times `routine`, recording `sample_count` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then the measured samples.
        let _ = routine();
        for _ in 0..self.sample_count {
            let started = Instant::now();
            for _ in 0..self.iters_per_sample {
                let _ = std::hint::black_box(routine());
            }
            self.samples
                .push(started.elapsed() / self.iters_per_sample as u32);
        }
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark (criterion default 100 is far too
    /// slow for a stub; we default to 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_count: self.sample_size,
        };
        f(&mut bencher, input);
        self.report(&id, &bencher.samples);
        self
    }

    /// Ends the group (all reporting already happened inline).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{:<40} (no samples)", self.name, id.label);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().expect("non-empty");
        let max = samples.iter().max().expect("non-empty");
        let mut line = format!(
            "{}/{:<40} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
            self.name,
            id.label,
            mean,
            min,
            max,
            samples.len()
        );
        if let Some(throughput) = self.throughput {
            let per_second = |count: u64| count as f64 / mean.as_secs_f64();
            match throughput {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  [{:.0} elem/s]", per_second(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  [{:.0} B/s]", per_second(n)));
                }
            }
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: u64,
}

impl Criterion {
    /// Accepts (and ignores) criterion command-line arguments so
    /// `cargo bench -- <filter>` does not error.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }

    /// Final summary, called by `criterion_main!`.
    pub fn final_summary(&self) {
        println!("{} benchmark(s) timed (vendored criterion stub)", self.benchmarks_run);
    }
}

/// Re-export for `use criterion::black_box` call sites.
pub use std::hint::black_box;

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut criterion = Criterion::default();
        {
            let mut group = criterion.benchmark_group("unit");
            group.sample_size(3);
            group.throughput(Throughput::Elements(4));
            let mut calls = 0u64;
            group.bench_function(BenchmarkId::new("noop", 4), |b| {
                b.iter(|| calls += 1)
            });
            // warm-up + 3 samples
            assert_eq!(calls, 4);
            group.finish();
        }
        assert_eq!(criterion.benchmarks_run, 1);
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("unit");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &v| {
            b.iter(|| assert_eq!(v, 7))
        });
    }
}
