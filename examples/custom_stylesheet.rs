//! User-defined translation rules: the paper lets users "define their
//! own XSL translation rules to output representations using the chosen
//! language (e.g., Verilog, VHDL, SystemC)". This example writes a small
//! custom stylesheet that renders the datapath XML as (a) a Verilog-like
//! skeleton and (b) a CSV component inventory — without touching the
//! infrastructure.
//!
//! Run with: `cargo run --example custom_stylesheet`

use nenya::{compile, CompileOptions};

const VERILOG_SHEET: &str = r##"
template datapath {
  emit "// auto-generated skeleton\nmodule {@name} (input {@clock});\n"
  apply signals/signal
  apply cells/cell
  emit "endmodule\n"
}
template signal { emit "  wire [{@width}:1] {@name};\n" }
template cell {
  emit "  {@kind} "
  for-each param { emit "#({@key}={@value}) " }
  emit "{@name} ("
  for-each conn { emit ".{@port}({@signal}) " }
  emit ");\n"
}
"##;

const CSV_SHEET: &str = r##"
template datapath {
  emit "name,kind,connections\n"
  apply cells/cell
}
template cell {
  emit "{@name},{@kind},"
  for-each conn { emit "{@port}:{@signal};" }
  emit "\n"
}
"##;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let design = compile(
        "gray",
        "mem inp[16]; mem out[16];
         void main() {
             int i;
             for (i = 0; i < 16; i = i + 1) { out[i] = inp[i] ^ (inp[i] >>> 1); }
         }",
        &CompileOptions::default(),
    )?;
    let dp_doc = nenya::xml::emit_datapath(&design.configs[0].datapath);

    let verilog = xform::transform(VERILOG_SHEET, &dp_doc)?;
    println!("--- Verilog-like skeleton (first 15 lines) ---");
    for line in verilog.lines().take(15) {
        println!("{line}");
    }
    println!("  … ({} lines total)\n", verilog.lines().count());

    let csv = xform::transform(CSV_SHEET, &dp_doc)?;
    println!("--- component inventory (first 10 rows) ---");
    for line in csv.lines().take(10) {
        println!("{line}");
    }
    println!("  … ({} components total)", csv.lines().count() - 1);

    assert!(verilog.contains("module gray"));
    assert!(csv.starts_with("name,kind,connections"));
    Ok(())
}
