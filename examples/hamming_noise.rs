//! The paper's second workload: a Hamming(7,4) decoder correcting
//! injected single-bit errors. Demonstrates that the *hardware* the
//! compiler generated really performs the correction: we corrupt
//! codewords, simulate the generated design, and check the decoded
//! nibbles.
//!
//! Run with: `cargo run --example hamming_noise [words]`

use fpgatest::flow::TestFlow;
use fpgatest::stimulus::Stimulus;
use fpgatest::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let words: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(32);

    let codewords = workloads::hamming_codewords(words);
    let expected = workloads::hamming_expected(words);

    let report = TestFlow::new("hamming", workloads::hamming_source(words))
        .stimulus("code", Stimulus::from_values(codewords.iter().copied()))
        .run()?;

    println!("{}", report.render());
    println!("word  codeword  decoded  expected  corrected?");
    for i in 0..words.min(16) {
        let decoded = report.sim_mems["data"][i].expect("decoder wrote every word");
        let clean = workloads::hamming_encode((i % 16) as u8) as i64;
        println!(
            "{:>4}  {:07b}   {:>7}  {:>8}  {}",
            i,
            codewords[i],
            decoded,
            expected[i],
            if codewords[i] != clean {
                "yes (bit flipped)"
            } else {
                "no error"
            }
        );
        assert_eq!(decoded, expected[i]);
    }
    assert!(report.passed);
    println!("\nall {words} codewords decoded correctly by the generated hardware");
    Ok(())
}
