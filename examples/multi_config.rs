//! Temporal partitioning: one algorithm split across two FPGA
//! configurations (the paper's FDCT2), sequenced by the Reconfiguration
//! Transition Graph while SRAM contents persist across reconfigurations.
//!
//! Run with: `cargo run --release --example multi_config`

use fpgatest::flow::{FlowOptions, TestFlow};
use fpgatest::stimulus::Stimulus;
use fpgatest::workloads;
use nenya::CompileOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pixels = 512;
    let report = TestFlow::new("fdct2", workloads::fdct_source(pixels))
        .with_options(FlowOptions {
            compile: CompileOptions {
                width: 32,
                partitions: 2,
                ..CompileOptions::default()
            },
            ..FlowOptions::default()
        })
        .stimulus("img", Stimulus::from_values(workloads::test_image(pixels)))
        .run()?;

    println!("{}", report.render());
    println!("{}", report.metrics);

    let artifacts = report.artifacts.as_ref().expect("artifacts kept by default");
    println!("--- rtg.xml ---\n{}", artifacts.rtg_xml);
    println!(
        "--- reconfiguration controller (generated) ---\n{}",
        artifacts.controller_src
    );

    println!("per-configuration summary:");
    for (run, config) in report.runs.iter().zip(&report.metrics.configs) {
        println!(
            "  {}: {} operators, {} FSM states, {} cycles, {:.4}s",
            run.name, config.operators, config.fsm_states, run.cycles, config.sim_seconds
        );
    }
    assert!(report.passed);
    assert_eq!(report.runs.len(), 2);
    Ok(())
}
