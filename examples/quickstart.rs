//! Quickstart: verify one compiler-generated design end to end.
//!
//! Compiles a small program, simulates the generated datapath+FSM, runs
//! the golden software reference over the same stimulus, and compares
//! memory contents — the whole DATE'05 flow in a dozen lines.
//!
//! Run with: `cargo run --example quickstart`

use fpgatest::flow::TestFlow;
use fpgatest::stimulus::Stimulus;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = "
        mem inp[8];
        mem out[8];
        void main() {
            int i;
            for (i = 0; i < 8; i = i + 1) {
                out[i] = inp[i] * inp[i] + 1;
            }
        }
    ";

    let report = TestFlow::new("quickstart", source)
        .stimulus("inp", Stimulus::from_values([0, 1, 2, 3, 4, 5, 6, 7]))
        .run()?;

    println!("{}", report.render());
    println!("{}", report.metrics); // the Table I row for this design

    println!("simulated 'out' memory:");
    for (addr, word) in report.sim_mems["out"].iter().enumerate() {
        println!(
            "  out[{addr}] = {}",
            word.map_or("X".to_string(), |v| v.to_string())
        );
    }

    assert!(report.passed);
    Ok(())
}
