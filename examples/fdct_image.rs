//! The paper's headline workload: the fast DCT over an image of 8×8
//! blocks (FDCT1 — a single configuration), with artifacts written to
//! `target/fdct_image/`: the XML dialects, the `.hds` netlist, the
//! behavioral FSM source, Graphviz dots, and PGM dumps of the input and
//! output images (the substitution for the paper's Java GUI display).
//!
//! Run with: `cargo run --release --example fdct_image [pixels]`

use fpgatest::flow::{FlowOptions, TestFlow};
use fpgatest::stimulus::{self, Stimulus};
use fpgatest::workloads;
use nenya::CompileOptions;
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pixels: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse())
        .transpose()?
        .unwrap_or(1024);

    let image = workloads::test_image(pixels);
    let report = TestFlow::new("fdct1", workloads::fdct_source(pixels))
        .with_options(FlowOptions {
            compile: CompileOptions {
                width: 32,
                ..CompileOptions::default()
            },
            ..FlowOptions::default()
        })
        .stimulus("img", Stimulus::from_values(image))
        .run()?;

    println!("{}", report.render());
    println!("{}", report.metrics);

    let dir = Path::new("target/fdct_image");
    fs::create_dir_all(dir)?;
    if let Some(artifacts) = &report.artifacts {
        let config = &artifacts.configs[0];
        fs::write(dir.join("datapath.xml"), &config.datapath_xml)?;
        fs::write(dir.join("fsm.xml"), &config.fsm_xml)?;
        fs::write(dir.join("datapath.hds"), &config.hds)?;
        fs::write(dir.join("fsm_behavior.java"), &config.behavior_src)?;
        fs::write(dir.join("datapath.dot"), &config.datapath_dot)?;
        fs::write(dir.join("fsm.dot"), &config.fsm_dot)?;
    }
    // The image views: input pixels and the DCT coefficient plane
    // (clamped; DC coefficients dominate).
    let row_pixels = 8 * (pixels / 64).min(64);
    fs::write(
        dir.join("input.pgm"),
        stimulus::to_pgm(&report.sim_mems["img"], row_pixels, 255),
    )?;
    fs::write(
        dir.join("coefficients.pgm"),
        stimulus::to_pgm(&report.sim_mems["out"], row_pixels, 255),
    )?;
    fs::write(
        dir.join("out.mem"),
        stimulus::emit("out", &report.sim_mems["out"]),
    )?;
    println!("artifacts written to {}", dir.display());

    assert!(report.passed);
    Ok(())
}
