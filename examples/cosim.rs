//! Hardware/software co-simulation — the paper's stated *future work*:
//! "functional simulation of a microprocessor tightly coupled to
//! reconfigurable hardware components".
//!
//! One event kernel runs both sides on the same clock:
//!
//! * the **fabric**: a compiler-generated accelerator (datapath + FSM)
//!   that squares every word of an input SRAM;
//! * the **processor**: a behavioral CPU ([`eventsim::cpu::Cpu`]) that
//!   shares the accelerator's output SRAM, polls the fabric's `done`
//!   flag, then post-processes the results in software (a checksum).
//!
//! Run with: `cargo run --example cosim`

use eventsim::cpu::{Cpu, CpuInstr};
use eventsim::{RunOutcome, SimTime};
use fpgatest::elaborate::elaborate_config_with;
use nenya::{compile, CompileOptions};

const N: usize = 16;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The accelerator, straight from the compiler under test.
    let source = format!(
        "mem inp[{N}]; mem out[{N}];
         void main() {{
             int i;
             for (i = 0; i < {N}; i = i + 1) {{ out[i] = inp[i] * inp[i]; }}
         }}"
    );
    let design = compile("square_accel", &source, &CompileOptions::default())?;
    let config = &design.configs[0];
    let dp_doc = nenya::xml::emit_datapath(&config.datapath);
    let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
    // stop_when_done = false: the CPU, not the fabric, ends this run.
    let mut cs = elaborate_config_with(&dp_doc, &fsm_doc, false)?;

    // Stimulus for the fabric.
    let inputs: Vec<i64> = (0..N as i64).map(|i| i + 1).collect();
    for (addr, &v) in inputs.iter().enumerate() {
        cs.mems["inp"].store(addr, v);
    }

    // The processor: waits for `done`, then sums the shared output SRAM
    // and reports the checksum on a port. The output SRAM handle is the
    // *same storage* the fabric writes — shared-memory coupling.
    let checksum_port = cs.sim.add_signal("checksum", 32);
    let program = vec![
        CpuInstr::WaitTrue(0), // poll the fabric's done flag
        CpuInstr::Ldi(0),
        CpuInstr::SetX(0),
        CpuInstr::AddIdx, // 3: acc += out[x]
        CpuInstr::AddX(1),
        CpuInstr::JmpIfXNe(N as i64, 3),
        CpuInstr::Out(0),
        CpuInstr::Halt,
    ];
    cs.sim.add_component(
        Cpu::new(
            "cpu0",
            cs.clk,
            program,
            cs.mems["out"].clone(),
            vec![cs.done],
            vec![(checksum_port, 32)],
        )
        .with_stop_on_halt(true),
    );

    let summary = cs.sim.run(SimTime(10_000_000))?;
    println!("outcome: {:?}", summary.outcome);

    let expected: i64 = inputs.iter().map(|v| v * v).sum();
    let got = cs.sim.value(checksum_port).as_i64();
    println!("fabric squared {N} words; cpu checksum = {got} (expected {expected})");
    println!(
        "co-simulation: {} kernel events, fabric+cpu on one clock, {} ticks",
        summary.events,
        summary.end_time.ticks()
    );

    assert_eq!(got, expected);
    assert!(matches!(summary.outcome, RunOutcome::Stopped(_)));
    Ok(())
}
