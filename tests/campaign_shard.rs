//! Property tests of the sharded fault-campaign runtime: at any shard
//! count the merged records and the deterministic event stream are
//! byte-identical, the records match the legacy sequential
//! `run_campaign` path, and a stop-flag interrupt plus resume
//! reproduces the uninterrupted run exactly.

use fpgatest::events::EventSink;
use fpgatest::faults::{
    run_campaign, run_campaign_sharded, CampaignOptions, ShardedCampaignOptions,
};
use fpgatest::flow::Engine;
use fpgatest::stimulus::Stimulus;
use fpgatest::suite::TestCase;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const PROGRAM: &str = "mem inp[4]; mem out[4];
void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = inp[i] * 2 + 1; } }";

fn passing_case(name: &str) -> TestCase {
    TestCase::new(name, PROGRAM).with_stimulus("inp", Stimulus::from_values([3, 1, 4, 1]))
}

fn campaign(engine: Engine, sites: usize, events: EventSink) -> CampaignOptions {
    CampaignOptions {
        seed: 5,
        sites,
        engine,
        max_ticks: None,
        events,
    }
}

/// One injection as comparable `(fault, outcome, detail)` strings.
type RecordStrings = Vec<(String, String, String)>;

/// Records as comparable `(fault, outcome, detail)` strings.
fn record_strings(report: &fpgatest::faults::CampaignReport) -> RecordStrings {
    report
        .injections
        .iter()
        .map(|r| (r.fault.to_string(), r.outcome.to_string(), r.detail.clone()))
        .collect()
}

#[test]
fn sharded_records_and_events_are_identical_at_every_shard_count() {
    for engine in [Engine::Event, Engine::Batch] {
        let case = passing_case("shardmerge");
        let legacy = run_campaign(&case, &campaign(engine, 40, EventSink::disabled())).unwrap();
        let mut reference: Option<(RecordStrings, String)> = None;
        for shards in [1usize, 2, 4] {
            let (sink, captured) = EventSink::capture();
            let outcome = run_campaign_sharded(
                &case,
                &campaign(engine, 40, sink),
                &ShardedCampaignOptions {
                    shards,
                    ..ShardedCampaignOptions::default()
                },
            )
            .unwrap();
            assert!(!outcome.interrupted);
            assert_eq!(
                record_strings(&legacy),
                record_strings(&outcome.report),
                "{engine:?} at {shards} shards diverges from the sequential path"
            );
            let snapshot = (record_strings(&outcome.report), captured.text());
            match &reference {
                None => reference = Some(snapshot),
                Some(reference) => {
                    assert_eq!(reference.0, snapshot.0, "{engine:?} records differ at {shards}");
                    assert_eq!(reference.1, snapshot.1, "{engine:?} events differ at {shards}");
                }
            }
        }
    }
}

#[test]
fn stop_flag_interrupt_then_resume_matches_the_uninterrupted_campaign() {
    let dir = std::env::temp_dir().join("fpgatest_campaign_shard_resume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint = dir.join("faults.ckpt");

    let case = passing_case("shardresume");
    let (sink, reference_events) = EventSink::capture();
    let reference = run_campaign_sharded(
        &case,
        &campaign(Engine::Event, 48, sink),
        &ShardedCampaignOptions {
            shards: 2,
            ..ShardedCampaignOptions::default()
        },
    )
    .unwrap();
    assert!(!reference.interrupted);

    // The timer's cut point is scheduling-dependent; whatever prefix
    // lands in the checkpoint, resuming must finish to the same bytes.
    let stop = Arc::new(AtomicBool::new(false));
    let timer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(40));
            stop.store(true, Ordering::SeqCst);
        })
    };
    let first = run_campaign_sharded(
        &case,
        &campaign(Engine::Event, 48, EventSink::disabled()),
        &ShardedCampaignOptions {
            shards: 2,
            checkpoint: Some(checkpoint.clone()),
            checkpoint_every: 1,
            stop: Some(stop),
            ..ShardedCampaignOptions::default()
        },
    )
    .unwrap();
    timer.join().unwrap();

    let (final_records, final_events) = if first.interrupted {
        let text = std::fs::read_to_string(&checkpoint).unwrap();
        assert!(
            text.contains("\"schema\": \"fpgatest-checkpoint-v1\"")
                || text.contains("\"schema\":\"fpgatest-checkpoint-v1\""),
            "checkpoint file carries the fpgatest-checkpoint-v1 schema tag:\n{text}"
        );
        let (sink, resumed_events) = EventSink::capture();
        let resumed = run_campaign_sharded(
            &case,
            &campaign(Engine::Event, 48, sink),
            &ShardedCampaignOptions {
                shards: 2,
                resume: Some(checkpoint.clone()),
                ..ShardedCampaignOptions::default()
            },
        )
        .unwrap();
        assert!(!resumed.interrupted);
        assert!(resumed.resumed > 0, "checkpoint held completed injections");
        (record_strings(&resumed.report), resumed_events.text())
    } else {
        // Outran the timer: the run is its own uninterrupted comparison.
        (record_strings(&first.report), String::new())
    };
    assert_eq!(record_strings(&reference.report), final_records);
    if !final_events.is_empty() {
        assert_eq!(reference_events.text(), final_events);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_refuses_a_checkpoint_from_a_different_campaign() {
    let dir = std::env::temp_dir().join("fpgatest_campaign_shard_mismatch");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let checkpoint = dir.join("cp.json");

    let case = passing_case("shardid");
    run_campaign_sharded(
        &case,
        &campaign(Engine::Event, 12, EventSink::disabled()),
        &ShardedCampaignOptions {
            shards: 2,
            checkpoint: Some(checkpoint.clone()),
            ..ShardedCampaignOptions::default()
        },
    )
    .unwrap();

    // Same checkpoint, different design name: the identity check refuses.
    let other = passing_case("shardid-other");
    let err = run_campaign_sharded(
        &other,
        &campaign(Engine::Event, 12, EventSink::disabled()),
        &ShardedCampaignOptions {
            shards: 2,
            resume: Some(checkpoint),
            ..ShardedCampaignOptions::default()
        },
    )
    .unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("checkpoint"),
        "mismatch error names the checkpoint: {message}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
