//! End-to-end integration: the full Figure 1 flow on the paper's two
//! workloads, checking golden-vs-simulated agreement, metrics
//! plausibility, and the observation features (VCD, PGM).

use fpgatest::flow::{FlowOptions, TestFlow};
use fpgatest::stimulus::{self, Stimulus};
use fpgatest::workloads;
use nenya::CompileOptions;

fn fdct_flow(pixels: usize, partitions: usize) -> TestFlow {
    TestFlow::new("fdct", workloads::fdct_source(pixels))
        .with_options(FlowOptions {
            compile: CompileOptions {
                width: 32,
                partitions,
                ..CompileOptions::default()
            },
            ..FlowOptions::default()
        })
        .stimulus("img", Stimulus::from_values(workloads::test_image(pixels)))
}

#[test]
fn fdct_hardware_matches_golden_and_host_reference() {
    let pixels = 128;
    let report = fdct_flow(pixels, 1).run().expect("flow runs");
    assert!(report.passed, "{}", report.render());

    // Golden == simulated is the flow's own check; additionally pin both
    // against the independent host implementation of the same DCT.
    let expected = workloads::fdct_reference(&workloads::test_image(pixels));
    let got: Vec<i64> = report.sim_mems["out"]
        .iter()
        .map(|w| w.expect("every coefficient written"))
        .collect();
    assert_eq!(got, expected);
}

#[test]
fn fdct_metrics_have_paper_shape() {
    let report = fdct_flow(128, 1).run().expect("flow runs");
    let m = &report.metrics;
    // Operator count close to the paper's 169 (independent of image size).
    assert!(
        (140..=200).contains(&m.total_operators()),
        "operators = {}",
        m.total_operators()
    );
    // Datapath XML is the largest description, as in Table I.
    let c = &m.configs[0];
    assert!(c.lo_xml_datapath > c.lo_xml_fsm);
    assert!(c.lo_behav_fsm > 100);
    assert!(c.cycles > 0 && c.events > 0);
}

#[test]
fn hamming_decoder_corrects_errors_in_hardware() {
    let words = 32;
    let report = TestFlow::new("hamming", workloads::hamming_source(words))
        .stimulus(
            "code",
            Stimulus::from_values(workloads::hamming_codewords(words)),
        )
        .run()
        .expect("flow runs");
    assert!(report.passed, "{}", report.render());
    let decoded: Vec<i64> = report.sim_mems["data"]
        .iter()
        .map(|w| w.expect("written"))
        .collect();
    assert_eq!(decoded, workloads::hamming_expected(words));
}

#[test]
fn tracing_and_pgm_outputs_work_on_real_designs() {
    let report = fdct_flow(64, 1)
        .with_trace(true)
        .run()
        .expect("flow runs");
    let vcd = report.runs[0].vcd.as_ref().expect("vcd requested");
    assert!(vcd.contains("$enddefinitions"));
    assert!(vcd.matches('#').count() > 10, "clock edges recorded");

    let pgm = stimulus::to_pgm(&report.sim_mems["img"], 8, 255);
    assert!(pgm.starts_with("P2\n8 8\n255\n"));
}

#[test]
fn suite_of_paper_workloads_passes() {
    use fpgatest::suite::{Suite, TestCase};
    let mut fdct_case = TestCase::new("fdct1", workloads::fdct_source(64));
    fdct_case.options.compile.width = 32;
    fdct_case = fdct_case.with_stimulus("img", Stimulus::from_values(workloads::test_image(64)));
    let hamming_case = TestCase::new("hamming", workloads::hamming_source(16)).with_stimulus(
        "code",
        Stimulus::from_values(workloads::hamming_codewords(16)),
    );
    let report = Suite::new()
        .with_case(fdct_case)
        .with_case(hamming_case)
        .run();
    assert!(report.all_passed(), "{}", report.render());
}

#[test]
fn artifacts_are_complete_and_consistent() {
    let report = fdct_flow(64, 1).run().expect("flow runs");
    let artifacts = report.artifacts.expect("kept by default");
    let config = &artifacts.configs[0];
    // XML artifacts reparse.
    assert!(xmlite::Document::parse(&config.datapath_xml).is_ok());
    assert!(xmlite::Document::parse(&config.fsm_xml).is_ok());
    assert!(xmlite::Document::parse(&artifacts.rtg_xml).is_ok());
    // hds reparses into a netlist with the same operator count.
    let netlist = eventsim::hds::parse(&config.hds).expect("hds parses");
    assert_eq!(
        netlist.operator_count(),
        report.metrics.configs[0].operators
    );
    // Behavioral source mentions every FSM state... at least the sizes
    // line up with the metrics.
    assert_eq!(
        config
            .behavior_src
            .lines()
            .filter(|l| !l.trim().is_empty())
            .count(),
        report.metrics.configs[0].lo_behav_fsm
    );
    // Dots are balanced digraphs.
    for dot in [&config.datapath_dot, &config.fsm_dot, &artifacts.rtg_dot] {
        assert!(fpgatest::dot::dot_is_balanced(dot));
    }
}

#[test]
fn extended_workloads_pass_in_hardware() {
    // Matrix multiply: triple loop nest, 2-D addressing.
    let n = 3;
    let a: Vec<i64> = (0..(n * n) as i64).collect();
    let b: Vec<i64> = (0..(n * n) as i64).map(|v| v + 1).collect();
    let report = TestFlow::new("matmul", workloads::matmul_source(n))
        .stimulus("a", Stimulus::from_values(a.iter().copied()))
        .stimulus("b", Stimulus::from_values(b.iter().copied()))
        .run()
        .expect("flow runs");
    assert!(report.passed, "{}", report.render());
    let got: Vec<i64> = report.sim_mems["c"].iter().map(|w| w.unwrap()).collect();
    assert_eq!(got, workloads::matmul_reference(&a, &b, n));

    // Bubble sort: data-dependent branches decide swaps in hardware.
    let count = 10;
    let mut values: Vec<i64> = (0..count as i64).map(|v| (v * 31 + 7) % 40 - 15).collect();
    let report = TestFlow::new("sort", workloads::sort_source(count))
        .stimulus("data", Stimulus::from_values(values.iter().copied()))
        .run()
        .expect("flow runs");
    assert!(report.passed, "{}", report.render());
    values.sort_unstable();
    let got: Vec<i64> = report.sim_mems["data"].iter().map(|w| w.unwrap()).collect();
    assert_eq!(got, values);
}

#[test]
fn optimized_compiler_passes_hardware_verification() {
    // The paper's core scenario: the compiler changed (optimizer on) —
    // the infrastructure re-verifies the whole suite.
    for optimize in [false, true] {
        let report = fdct_flow(64, 1)
            .with_optimize(optimize)
            .run()
            .expect("flow runs");
        assert!(report.passed, "optimize={optimize}: {}", report.render());
    }
    // And the optimized design is genuinely different (fewer cycles).
    let plain = fdct_flow(64, 1).run().unwrap();
    let optimized = fdct_flow(64, 1).with_optimize(true).run().unwrap();
    assert!(optimized.metrics.total_cycles() < plain.metrics.total_cycles());
    assert_eq!(plain.sim_mems["out"], optimized.sim_mems["out"]);
}

#[test]
fn designs_verify_across_data_widths() {
    // The same program compiled at different design widths: wrapping
    // behaviour differs, but golden and hardware must agree at every
    // width (both derive their arithmetic from the width).
    let source = "mem out[6]; void main() {
        int i;
        for (i = 0; i < 6; i = i + 1) {
            out[i] = (i + 1) * 3000;
        }
    }";
    let mut per_width = Vec::new();
    for width in [8u32, 16, 24, 48, 64] {
        let report = TestFlow::new("widths", source)
            .with_width(width)
            .run()
            .expect("flow runs");
        assert!(report.passed, "width {width}: {}", report.render());
        per_width.push(report.sim_mems["out"].clone());
    }
    // 8-bit wraps (3000 & 0xFF sign-extended), 16-bit holds 3000..15000
    // but wraps 18000, wide widths hold everything.
    assert_ne!(per_width[0], per_width[1]);
    assert_eq!(per_width[3], per_width[4]);
    assert_eq!(per_width[4][5], Some(18000));
    assert_eq!(per_width[1][5], Some((18000i64 as i16) as i64));
}
