//! The suite runner end to end, including the on-disk manifest format —
//! the paper's "checking the overall test suite" automation.

use fpgatest::stimulus::Stimulus;
use fpgatest::suite::{self, Suite, TestCase};
use fpgatest::workloads;
use std::fs;
use std::path::PathBuf;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpgatest_{name}_{}", std::process::id()));
    fs::create_dir_all(&dir).expect("temp dir");
    dir
}

#[test]
fn mixed_suite_reports_individual_verdicts() {
    let suite = Suite::new()
        .with_case(
            TestCase::new("hamming", workloads::hamming_source(8)).with_stimulus(
                "code",
                Stimulus::from_values(workloads::hamming_codewords(8)),
            ),
        )
        .with_case(TestCase::new(
            "passes",
            "mem out[2]; void main() { out[0] = 5; out[1] = 6; }",
        ))
        .with_case(TestCase::new("syntax_error", "void main( {"))
        .with_case(TestCase::new(
            "runtime_error",
            "mem out[1]; void main() { int z = 0; out[0] = 3 / z; }",
        ));
    let report = suite.run();
    assert_eq!(report.results.len(), 4);
    assert_eq!(report.passed(), 2);
    assert_eq!(report.failed(), 2);
    let text = report.render();
    assert!(text.contains("hamming"));
    assert!(text.contains("ERROR"));
    assert!(text.contains("2 passed, 2 failed, 4 total"));
}

#[test]
fn manifest_suite_runs_from_disk() {
    let dir = temp_dir("manifest");

    fs::write(dir.join("hamming.src"), workloads::hamming_source(8)).unwrap();
    let stim_text: String = workloads::hamming_codewords(8)
        .iter()
        .enumerate()
        .map(|(a, v)| format!("{a}: {v}\n"))
        .collect();
    fs::write(dir.join("code.stim"), format!("@mem code\n@size 8\n{stim_text}")).unwrap();

    fs::write(dir.join("fdct.src"), workloads::fdct_source(64)).unwrap();
    let image_text: String = workloads::test_image(64)
        .iter()
        .enumerate()
        .map(|(a, v)| format!("{a}: {v}\n"))
        .collect();
    fs::write(dir.join("img.stim"), image_text).unwrap();

    fs::write(
        dir.join("suite.manifest"),
        "\
# paper workloads
case hamming
  source hamming.src
  stimulus code code.stim

case fdct1
  source fdct.src
  stimulus img img.stim
  width 32
  partitions 1
  policy list

case fdct2
  source fdct.src
  stimulus img img.stim
  width 32
  partitions 2
",
    )
    .unwrap();

    let suite = suite::load_manifest(dir.join("suite.manifest")).expect("manifest loads");
    assert_eq!(suite.cases().len(), 3);
    let report = suite.run();
    assert!(report.all_passed(), "{}", report.render());

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn manifest_errors_are_actionable() {
    let dir = temp_dir("manifest_errs");
    fs::write(dir.join("bad.manifest"), "case x\n  stimulus mem nofile.stim\n").unwrap();
    let err = suite::load_manifest(dir.join("bad.manifest")).unwrap_err();
    assert!(err.to_string().contains("nofile.stim"), "{err}");

    fs::write(dir.join("bad2.manifest"), "case x\n  width lots\n").unwrap();
    let err = suite::load_manifest(dir.join("bad2.manifest")).unwrap_err();
    assert!(err.to_string().contains("line 2"), "{err}");

    assert!(suite::load_manifest(dir.join("missing.manifest")).is_err());
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn policy_variants_verify_the_same_program() {
    // The infrastructure's purpose: re-verify after a compiler change.
    // Here the "change" is the scheduling policy; both must pass with
    // identical memory contents.
    let dir = temp_dir("policies");
    fs::write(dir.join("p.src"), workloads::hamming_source(8)).unwrap();
    let stim: String = workloads::hamming_codewords(8)
        .iter()
        .enumerate()
        .map(|(a, v)| format!("{a}: {v}\n"))
        .collect();
    fs::write(dir.join("c.stim"), stim).unwrap();
    fs::write(
        dir.join("m.manifest"),
        "case naive\n source p.src\n stimulus code c.stim\n policy one-op-per-state\n\
         case packed\n source p.src\n stimulus code c.stim\n policy list\n",
    )
    .unwrap();
    let report = suite::load_manifest(dir.join("m.manifest")).unwrap().run();
    assert!(report.all_passed(), "{}", report.render());

    let outputs: Vec<_> = report
        .results
        .iter()
        .map(|(_, r)| match r {
            fpgatest::suite::CaseResult::Finished(rep) => rep.sim_mems["data"].clone(),
            _ => panic!("finished"),
        })
        .collect();
    assert_eq!(outputs[0], outputs[1]);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn shipped_example_suite_passes() {
    // The repository ships a runnable suite (examples/suite); tests run
    // with the package root as CWD, two levels below the workspace.
    let manifest = std::path::Path::new("../../examples/suite/suite.manifest");
    assert!(manifest.exists(), "shipped suite missing");
    let suite = suite::load_manifest(manifest).expect("manifest loads");
    assert_eq!(suite.cases().len(), 5);
    let report = suite.run();
    assert!(report.all_passed(), "{}", report.render());
}
