//! End-to-end checks of the observability layer: the `--metrics-out`
//! JSON agrees with the printed Table I, the span tree covers every
//! pipeline stage, and `--baseline` prints deltas without changing the
//! verdict.

use fpgatest::flow::TestFlow;
use fpgatest::stimulus::Stimulus;
use fpgatest::telemetry::{suite_json, Json, Recorder};
use std::path::PathBuf;
use std::process::Command;

const PROGRAM: &str = "mem inp[4]; mem out[4];
void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = inp[i] * 2 + 1; } }";

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpgatest_telemetry_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fpgatest(dir: &PathBuf, args: &[&str]) -> (String, String, bool) {
    let output = Command::new(env!("CARGO_BIN_EXE_fpgatest"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("fpgatest runs");
    (
        String::from_utf8_lossy(&output.stdout).to_string(),
        String::from_utf8_lossy(&output.stderr).to_string(),
        output.status.success(),
    )
}

/// All span names in the report, tree-flattened.
fn span_names(report: &Json) -> Vec<String> {
    fn walk(spans: &[Json], acc: &mut Vec<String>) {
        for span in spans {
            if let Some(name) = span.get("name").and_then(Json::as_str) {
                acc.push(name.to_string());
            }
            if let Some(children) = span.get("children").and_then(Json::as_array) {
                walk(children, acc);
            }
        }
    }
    let mut acc = Vec::new();
    if let Some(spans) = report.get("spans").and_then(Json::as_array) {
        walk(spans, &mut acc);
    }
    acc
}

#[test]
fn metrics_json_matches_printed_table() {
    let dir = workdir("table");
    std::fs::write(dir.join("prog.src"), PROGRAM).unwrap();
    std::fs::write(dir.join("inp.stim"), "0: 1\n1: 2\n2: 3\n3: 4\n").unwrap();

    let (stdout, stderr, ok) = fpgatest(
        &dir,
        &[
            "test",
            "prog.src",
            "--stimulus",
            "inp=inp.stim",
            "--metrics-out",
            "m.json",
            "--trace-log",
            "t.jsonl",
            "--verbose",
        ],
    );
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("PASS"), "{stdout}");

    let report = Json::parse(&std::fs::read_to_string(dir.join("m.json")).unwrap()).unwrap();
    assert_eq!(report.get("schema").unwrap().as_str(), Some("fpgatest-metrics-v1"));
    assert_eq!(
        report.get("suite").unwrap().get("passed").unwrap().as_u64(),
        Some(1)
    );

    let design = &report.get("designs").unwrap().as_array().unwrap()[0];
    assert_eq!(design.get("design").unwrap().as_str(), Some("prog"));
    assert_eq!(design.get("status").unwrap().as_str(), Some("pass"));
    let config = &design.get("configs").unwrap().as_array().unwrap()[0];
    let events = config.get("events").unwrap().as_u64().unwrap();
    let sim_seconds = config.get("sim_seconds").unwrap().as_f64().unwrap();
    assert!(events > 0);

    // The verbose Table I row for this design must show the same numbers
    // the JSON carries.
    let row = stdout
        .lines()
        .find(|l| l.starts_with("prog "))
        .unwrap_or_else(|| panic!("no table row in:\n{stdout}"));
    assert!(
        row.contains(&events.to_string()),
        "events {events} not in row: {row}"
    );
    assert!(
        row.contains(&format!("{sim_seconds:.4}")),
        "sim_seconds {sim_seconds:.4} not in row: {row}"
    );

    // Kernel counters surfaced from eventsim.
    let kernel = config.get("kernel").unwrap();
    assert_eq!(kernel.get("events").unwrap().as_u64(), Some(events));
    assert!(kernel.get("delta_cycles").unwrap().as_u64().unwrap() > 0);
    assert!(kernel.get("max_queue_depth").unwrap().as_u64().unwrap() > 0);
    let hot = config.get("hot_components").unwrap().as_array().unwrap();
    assert!(!hot.is_empty());
    assert!(hot[0].get("activations").unwrap().as_u64().unwrap() > 0);

    // Span tree covers every pipeline stage.
    let names = span_names(&report);
    for stage in [
        "flow.parse",
        "flow.lower",
        "flow.transform",
        "flow.elaborate",
        "flow.compare",
    ] {
        assert!(names.iter().any(|n| n == stage), "{stage} missing: {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("flow.simulate.")),
        "{names:?}"
    );

    // The JSONL trace log parses line by line.
    let jsonl = std::fs::read_to_string(dir.join("t.jsonl")).unwrap();
    assert!(jsonl.lines().count() >= 6);
    for line in jsonl.lines() {
        let entry = Json::parse(line).unwrap();
        assert_eq!(entry.get("type").unwrap().as_str(), Some("span"));
    }
}

#[test]
fn baseline_prints_deltas_without_changing_verdict() {
    let dir = workdir("baseline");
    std::fs::write(dir.join("prog.src"), PROGRAM).unwrap();
    std::fs::write(dir.join("inp.stim"), "0: 1\n1: 2\n2: 3\n3: 4\n").unwrap();
    let args = ["test", "prog.src", "--stimulus", "inp=inp.stim"];

    let (first_out, _, ok) = fpgatest(
        &dir,
        &[&args[..], &["--metrics-out", "m.json"]].concat(),
    );
    assert!(ok, "{first_out}");

    let (second_out, stderr, ok) =
        fpgatest(&dir, &[&args[..], &["--baseline", "m.json"]].concat());
    assert!(ok, "stdout:\n{second_out}\nstderr:\n{stderr}");
    assert!(second_out.contains("PASS"), "{second_out}");
    assert!(second_out.contains("timing vs baseline:"), "{second_out}");
    assert!(second_out.contains("prog"), "{second_out}");
    assert!(second_out.contains("total"), "{second_out}");
}

#[test]
fn test_subcommand_accepts_a_manifest() {
    let dir = workdir("manifest");
    std::fs::write(dir.join("a.src"), PROGRAM).unwrap();
    std::fs::write(dir.join("inp.stim"), "0: 5\n1: 6\n2: 7\n3: 8\n").unwrap();
    std::fs::write(
        dir.join("suite.manifest"),
        "case a\n  source a.src\n  stimulus inp inp.stim\ncase b\n  source a.src\n  stimulus inp inp.stim\n",
    )
    .unwrap();

    let (stdout, stderr, ok) = fpgatest(
        &dir,
        &["test", "suite.manifest", "--metrics-out", "m.json"],
    );
    assert!(ok, "stdout:\n{stdout}\nstderr:\n{stderr}");
    assert!(stdout.contains("2 passed"), "{stdout}");

    let report = Json::parse(&std::fs::read_to_string(dir.join("m.json")).unwrap()).unwrap();
    let designs = report.get("designs").unwrap().as_array().unwrap();
    assert_eq!(designs.len(), 2);
    // Each case's flow spans nest under its case.<name> span.
    let names = span_names(&report);
    assert!(names.iter().any(|n| n == "case.a"), "{names:?}");
    assert!(names.iter().any(|n| n == "case.b"), "{names:?}");
}

#[test]
fn library_report_agrees_with_flow_results() {
    let mut recorder = Recorder::new();
    let report = TestFlow::new("lib", PROGRAM)
        .stimulus("inp", Stimulus::from_values([9, 9, 9, 9]))
        .run_recorded(&mut recorder)
        .unwrap();
    assert!(report.passed);
    assert_eq!(report.runs[0].kernel.events, report.runs[0].summary.events);
    assert!(!report.runs[0].hot_components.is_empty());
    // Histogram is sorted descending.
    let counts: Vec<u64> = report.runs[0]
        .hot_components
        .iter()
        .map(|(_, n)| *n)
        .collect();
    assert!(counts.windows(2).all(|w| w[0] >= w[1]));

    let suite = fpgatest::suite::SuiteReport {
        results: vec![(
            "lib".to_string(),
            fpgatest::suite::CaseResult::Finished(report),
        )],
    };
    let json = suite_json(&suite, &recorder);
    let text = json.emit_pretty();
    let reparsed = Json::parse(&text).unwrap();
    assert_eq!(reparsed, json, "report JSON must round-trip");
    let design = &reparsed.get("designs").unwrap().as_array().unwrap()[0];
    let config = &design.get("configs").unwrap().as_array().unwrap()[0];
    let events_json = config.get("events").unwrap().as_u64().unwrap();
    match &suite.results[0].1 {
        fpgatest::suite::CaseResult::Finished(r) => {
            assert_eq!(events_json, r.runs[0].summary.events);
        }
        _ => unreachable!(),
    }
}
