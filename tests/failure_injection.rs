//! Fault injection: the whole point of a *test* infrastructure is that it
//! catches compiler bugs. Each test plants a representative bug in the
//! generated artifacts — a wrong functional unit, a corrupted constant, a
//! mis-wired mux, a broken FSM assert — and checks the flow flags the
//! design instead of passing it.

use fpgatest::flow::{run_design, FlowOptions};
use fpgatest::stimulus::Stimulus;
use fpgatest::workloads;
use nenya::{compile, CompileOptions, Design};

fn hamming_design() -> (Design, Vec<(String, Stimulus)>) {
    let design = compile(
        "hamming",
        &workloads::hamming_source(8),
        &CompileOptions::default(),
    )
    .expect("compiles");
    let stimuli = vec![(
        "code".to_string(),
        Stimulus::from_values(workloads::hamming_codewords(8)),
    )];
    (design, stimuli)
}

fn expect_caught(design: &Design, stimuli: &[(String, Stimulus)], what: &str) {
    let report = run_design(design, stimuli, &FlowOptions::default())
        .unwrap_or_else(|e| panic!("{what}: flow errored instead of reporting: {e}"));
    assert!(
        !report.passed,
        "{what}: the injected bug was NOT caught\n{}",
        report.render()
    );
    // The verdict explains itself: either a simulation failure or concrete
    // mismatches.
    assert!(
        report.failure.is_some() || !report.mismatches.is_empty(),
        "{what}: failing report lacks a reason"
    );
}

#[test]
fn unmodified_design_passes() {
    let (design, stimuli) = hamming_design();
    let report = run_design(&design, &stimuli, &FlowOptions::default()).expect("runs");
    assert!(report.passed, "{}", report.render());
}

#[test]
fn wrong_functional_unit_kind_is_caught() {
    let (mut design, stimuli) = hamming_design();
    // A classic codegen bug: one adder emitted as a subtractor.
    let cell = design.configs[0]
        .datapath
        .cells
        .iter_mut()
        .find(|c| c.kind == "add")
        .expect("design has an adder");
    cell.kind = "sub".to_string();
    expect_caught(&design, &stimuli, "add→sub substitution");
}

#[test]
fn corrupted_constant_is_caught() {
    let (mut design, stimuli) = hamming_design();
    let cell = design.configs[0]
        .datapath
        .cells
        .iter_mut()
        .find(|c| c.kind == "const" && c.params.iter().any(|(k, v)| k == "value" && v == "1"))
        .expect("design has a const 1");
    for (key, value) in &mut cell.params {
        if key == "value" {
            *value = "2".to_string();
        }
    }
    expect_caught(&design, &stimuli, "constant corruption");
}

#[test]
fn swapped_comparison_is_caught() {
    let (mut design, stimuli) = hamming_design();
    // Loop bound comparison inverted (lt → ge): the loop either exits
    // immediately (wrong outputs) or never runs the body.
    let cell = design.configs[0]
        .datapath
        .cells
        .iter_mut()
        .find(|c| c.kind == "lt")
        .expect("loop comparison exists");
    cell.kind = "ge".to_string();
    expect_caught(&design, &stimuli, "inverted loop comparison");
}

#[test]
fn dropped_fsm_assert_is_caught() {
    let (mut design, stimuli) = hamming_design();
    // The control unit forgets to enable one register: a scheduling bug.
    let state = design.configs[0]
        .fsm
        .states
        .iter_mut()
        .find(|s| s.asserts.iter().any(|(n, v)| n.ends_with("_en") && *v == 1))
        .expect("some state enables a register");
    state
        .asserts
        .retain(|(n, v)| !(n.ends_with("_en") && *v == 1));
    expect_caught(&design, &stimuli, "dropped register enable");
}

#[test]
fn wrong_mux_select_is_caught() {
    let (mut design, stimuli) = hamming_design();
    // Find a state asserting a multi-writer register select and flip it.
    let fsm = &mut design.configs[0].fsm;
    let mut flipped = false;
    for state in &mut fsm.states {
        for (name, value) in &mut state.asserts {
            if name.ends_with("_sel") && *value == 0 {
                *value = 1;
                flipped = true;
                break;
            }
        }
        if flipped {
            break;
        }
    }
    assert!(flipped, "design has a mux select to corrupt");
    expect_caught(&design, &stimuli, "wrong mux select");
}

#[test]
fn wrong_branch_polarity_is_caught() {
    let (mut design, stimuli) = hamming_design();
    let fsm = &mut design.configs[0].fsm;
    let transition = fsm
        .states
        .iter_mut()
        .flat_map(|s| s.transitions.iter_mut())
        .find(|t| t.cond.is_some())
        .expect("fsm has a conditional transition");
    let (signal, when) = transition.cond.clone().expect("conditional");
    transition.cond = Some((signal, !when));
    expect_caught(&design, &stimuli, "inverted branch polarity");
}

#[test]
fn miswired_operand_is_caught() {
    let (mut design, stimuli) = hamming_design();
    // Rewire one FU's 'b' operand to its own 'a' operand signal.
    let cell = design.configs[0]
        .datapath
        .cells
        .iter_mut()
        .find(|c| c.kind == "xor")
        .expect("decoder has xor units");
    let a_signal = cell
        .conns
        .iter()
        .find(|(p, _)| p == "a")
        .map(|(_, s)| s.clone())
        .expect("a connected");
    for (port, signal) in &mut cell.conns {
        if port == "b" {
            *signal = a_signal.clone();
        }
    }
    expect_caught(&design, &stimuli, "miswired operand");
}

#[test]
fn truncated_memory_is_caught_as_failure() {
    let (mut design, stimuli) = hamming_design();
    // The compiler under-sizes an SRAM: the simulation must fail with an
    // out-of-range write rather than silently wrapping.
    for cell in &mut design.configs[0].datapath.cells {
        if cell.kind == "sram" && cell.name == "data" {
            for (key, value) in &mut cell.params {
                if key == "size" {
                    *value = "4".to_string(); // real size is 8
                }
            }
        }
    }
    // Note: the golden reference still uses the correct TAC memories, so
    // only the hardware misbehaves — exactly the asymmetry the flow
    // detects.
    let report = run_design(&design, &stimuli, &FlowOptions::default()).expect("flow runs");
    assert!(!report.passed);
    let failure = report.failure.expect("failure reported");
    assert!(
        failure.contains("out of range") || failure.contains("in the netlist"),
        "unexpected failure message: {failure}"
    );
}

#[test]
fn corrupted_xml_text_is_rejected_not_misread() {
    // Corruption at the *file* level: the dialect loaders must reject
    // malformed documents rather than elaborate something wrong.
    let (design, _) = hamming_design();
    let config = &design.configs[0];
    let dp_text = nenya::xml::emit_datapath(&config.datapath).to_pretty_string();

    // Truncated file.
    let truncated = &dp_text[..dp_text.len() / 2];
    assert!(xmlite::Document::parse(truncated).is_err());

    // Well-formed XML, wrong dialect content: strip a required attribute.
    let stripped = dp_text.replacen(" kind=\"add\"", "", 1);
    if stripped != dp_text {
        let doc = xmlite::Document::parse(&stripped).expect("still well-formed");
        assert!(nenya::xml::parse_datapath(&doc).is_err());
    }

    // Well-formed and dialect-valid, but naming an unknown component
    // kind: elaboration must fail, not guess.
    let retyped = dp_text.replacen("kind=\"add\"", "kind=\"quantum\"", 1);
    let doc = xmlite::Document::parse(&retyped).expect("well-formed");
    let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
    let result = fpgatest::elaborate::elaborate_config(&doc, &fsm_doc);
    assert!(
        matches!(result, Err(fpgatest::elaborate::ElaborateConfigError::Netlist(_))),
        "unknown kind must be an elaboration error"
    );
}
