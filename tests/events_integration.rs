//! End-to-end checks of the live observability layer: the
//! `fpgatest-events-v1` stream written by real runs parses line by line
//! and ends with `campaign-finished`, a killed campaign leaves only
//! whole lines behind, the engine profiler never perturbs kernel
//! counters, report JSON serializes canonically, and the trend ledger
//! gates regressions end to end.

use fpgatest::events::{Event, EventSink};
use fpgatest::flow::{FlowOptions, TestFlow};
use fpgatest::ledger::{self, LedgerEntry};
use fpgatest::stimulus::Stimulus;
use fpgatest::suite::{Suite, TestCase};
use fpgatest::telemetry::{suite_json, Json, Recorder};
use std::path::{Path, PathBuf};
use std::process::Command;

const PROGRAM: &str = "mem inp[4]; mem out[4];
void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = inp[i] * 2 + 1; } }";

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fpgatest_events_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_small_suite(dir: &Path) {
    std::fs::write(dir.join("prog.src"), PROGRAM).unwrap();
    std::fs::write(dir.join("inp.stim"), "0: 3\n1: 1\n2: 4\n3: 1\n").unwrap();
    std::fs::write(
        dir.join("suite.manifest"),
        "case double\n  source prog.src\n  stimulus inp inp.stim\n",
    )
    .unwrap();
}

/// Parses every line of an events file, panicking with the offending
/// line on any malformed entry, and asserts `seq` is 0,1,2,...
fn parse_stream(path: &Path) -> Vec<Event> {
    let text = std::fs::read_to_string(path).unwrap();
    assert!(
        text.is_empty() || text.ends_with('\n'),
        "stream ends mid-line"
    );
    text.lines()
        .enumerate()
        .map(|(i, line)| {
            let json = Json::parse(line)
                .unwrap_or_else(|e| panic!("line {i} unparseable: {e}\n{line}"));
            assert_eq!(
                json.get("seq").and_then(Json::as_u64),
                Some(i as u64),
                "seq not monotonic at line {i}"
            );
            Event::from_json(&json).unwrap_or_else(|e| panic!("line {i} untyped: {e}\n{line}"))
        })
        .collect()
}

#[test]
fn fault_campaign_cli_streams_parseable_jsonl_ending_in_campaign_finished() {
    let dir = workdir("faults_stream");
    write_small_suite(&dir);
    let events_path = dir.join("events.jsonl");
    let output = Command::new(env!("CARGO_BIN_EXE_fpgatest"))
        .args([
            "faults",
            "suite.manifest",
            "--seed",
            "1",
            "--sites",
            "12",
            "--events-out",
        ])
        .arg(&events_path)
        .current_dir(&dir)
        .output()
        .expect("fpgatest faults runs");
    assert!(
        output.status.code().is_some(),
        "campaign crashed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let events = parse_stream(&events_path);
    assert!(
        matches!(events.first(), Some(Event::CampaignStarted { kind, .. }) if kind == "faults"),
        "stream must open with campaign-started"
    );
    let Some(Event::CampaignFinished { kind, done, .. }) = events.last() else {
        panic!("stream must end with campaign-finished, got {:?}", events.last());
    };
    assert_eq!(kind, "faults");
    assert!(*done > 0, "campaign classified no injections");
    let injected = events
        .iter()
        .filter(|e| matches!(e, Event::FaultInjected { .. }))
        .count();
    let classified = events
        .iter()
        .filter(|e| matches!(e, Event::FaultClassified { .. }))
        .count();
    assert_eq!(injected, classified, "every injection gets a verdict");
    assert_eq!(classified as u64, *done);
}

#[test]
fn killed_campaign_leaves_only_whole_lines() {
    let dir = workdir("killed");
    write_small_suite(&dir);
    let events_path = dir.join("events.jsonl");
    // A site count large enough that the campaign outlives the kill on
    // any machine; if it happens to finish first the check still holds.
    let mut child = Command::new(env!("CARGO_BIN_EXE_fpgatest"))
        .args([
            "faults",
            "suite.manifest",
            "--seed",
            "1",
            "--sites",
            "5000",
            "--events-out",
        ])
        .arg(&events_path)
        .current_dir(&dir)
        .spawn()
        .expect("fpgatest faults spawns");
    // Let it emit a few events, then kill it mid-campaign (SIGKILL: no
    // destructors, no final flush — the per-event flush must be enough).
    std::thread::sleep(std::time::Duration::from_millis(400));
    let _ = child.kill();
    let _ = child.wait();

    let text = std::fs::read_to_string(&events_path).unwrap();
    assert!(!text.is_empty(), "no events were flushed before the kill");
    assert!(
        text.ends_with('\n'),
        "killed stream ends mid-line: ...{:?}",
        &text[text.len().saturating_sub(60)..]
    );
    for (i, line) in text.lines().enumerate() {
        let json =
            Json::parse(line).unwrap_or_else(|e| panic!("line {i} unparseable: {e}\n{line}"));
        Event::from_json(&json).unwrap_or_else(|e| panic!("line {i} untyped: {e}\n{line}"));
    }
}

#[test]
fn suite_run_event_file_round_trips_in_manifest_order() {
    let dir = workdir("suite_stream");
    let events_path = dir.join("events.jsonl");
    let sink = EventSink::to_path(events_path.to_str().unwrap()).unwrap();
    let mut suite = Suite::new()
        .with_case(TestCase::new("a", PROGRAM).with_stimulus("inp", Stimulus::from_values([3, 1, 4, 1])))
        .with_case(TestCase::new("b", PROGRAM).with_stimulus("inp", Stimulus::from_values([2, 7, 1, 8])));
    suite.set_events(sink, "demo");
    let report = suite.run_parallel(2);
    assert!(report.all_passed());

    let events = parse_stream(&events_path);
    let cases: Vec<(&str, &str)> = events
        .iter()
        .filter_map(|e| match e {
            Event::CaseFinished { case, verdict, .. } => Some((case.as_str(), verdict.as_str())),
            _ => None,
        })
        .collect();
    assert_eq!(
        cases,
        vec![("a", "pass"), ("b", "pass")],
        "case events in manifest order with verdicts"
    );
    assert!(matches!(events.last(), Some(Event::CampaignFinished { failed: 0, .. })));
}

#[test]
fn profiler_observes_without_perturbing_kernel_counters() {
    let flow = |profile: bool| {
        TestFlow::new("double", PROGRAM)
            .with_options(FlowOptions {
                profile,
                ..FlowOptions::default()
            })
            .stimulus("inp", Stimulus::from_values([3, 1, 4, 1]))
    };
    let plain = flow(false).run().expect("plain flow runs");
    let profiled = flow(true).run().expect("profiled flow runs");
    assert!(plain.passed && profiled.passed);
    assert_eq!(plain.runs.len(), profiled.runs.len());
    for (p, q) in plain.runs.iter().zip(profiled.runs.iter()) {
        assert_eq!(p.kernel, q.kernel, "profiling changed kernel counters");
        assert_eq!(p.cycles, q.cycles, "profiling changed cycle counts");
        assert!(p.profile.is_none(), "profile collected without --profile");
        let profile = q.profile.as_ref().expect("--profile collects a profile");
        assert!(
            !profile.classes.is_empty(),
            "event-kernel profile has per-class timings"
        );
        let evals: u64 = profile.classes.iter().map(|c| c.evals).sum();
        assert!(evals > 0, "profiled classes saw no evaluations");
    }
}

#[test]
fn report_json_serializes_canonically() {
    let build = || {
        let mut recorder = Recorder::new();
        let flow = TestFlow::new("double", PROGRAM)
            .stimulus("inp", Stimulus::from_values([3, 1, 4, 1]));
        let report = flow.run_recorded(&mut recorder).expect("flow runs");
        let suite = fpgatest::suite::SuiteReport {
            results: vec![(
                "double".to_string(),
                fpgatest::suite::CaseResult::Finished(report),
            )],
        };
        let mut json = suite_json(&suite, &recorder);
        json.sort_keys();
        json.emit_pretty()
    };
    let first = build();
    let second = build();
    // Wall-clock fields differ run to run; structure and key order must
    // not. Compare the key skeletons line by line.
    let keys = |text: &str| -> Vec<String> {
        text.lines()
            .filter_map(|l| {
                let t = l.trim_start();
                t.starts_with('"').then(|| t.split(':').next().unwrap_or(t).to_string())
            })
            .collect()
    };
    assert_eq!(keys(&first), keys(&second), "key order is not canonical");
    // And serializing the *same* report twice is byte-identical.
    assert_eq!(first, build_twice_check(&first));

    fn build_twice_check(first: &str) -> String {
        let json = Json::parse(first).expect("emitted report parses");
        json.emit_pretty()
    }
}

#[test]
fn trend_ledger_gates_regressions_end_to_end() {
    let dir = workdir("trends");
    let path = dir.join("runs.jsonl");
    let fast = LedgerEntry {
        engine: "event".to_string(),
        wall_seconds: 1.0,
        passed: 5,
        failed: 0,
        counters: vec![("cycles".to_string(), 100.0)],
        ..LedgerEntry::new("run", "suite.manifest")
    };
    let slow = LedgerEntry {
        wall_seconds: 2.0,
        ..fast.clone()
    };
    ledger::append(&path, &fast).unwrap();
    ledger::append(&path, &slow).unwrap();

    let entries = ledger::read(&path).unwrap();
    assert_eq!(entries.len(), 2);
    let report = ledger::render_trends(&entries, Some(10.0));
    assert!(
        report.gate_exceeded,
        "a 2x wall-time regression must trip a 10% gate:\n{}",
        report.text
    );
    assert!(report.text.contains('%'), "trends render percent deltas");
    let lenient = ledger::render_trends(&entries, Some(500.0));
    assert!(!lenient.gate_exceeded, "a 500% gate tolerates 2x");

    // The CLI agrees: non-zero exit with the tight gate, zero without.
    let trends = |extra: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_fpgatest"))
            .arg("trends")
            .arg(&path)
            .args(extra)
            .output()
            .expect("fpgatest trends runs")
    };
    let gated = trends(&["--gate", "10"]);
    assert!(
        !gated.status.success(),
        "trends --gate 10 must fail on a 2x regression:\n{}",
        String::from_utf8_lossy(&gated.stdout)
    );
    let ungated = trends(&[]);
    assert!(
        ungated.status.success(),
        "trends without a gate only reports:\n{}",
        String::from_utf8_lossy(&ungated.stderr)
    );
}
