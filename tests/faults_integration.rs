//! End-to-end checks of the fault-injection subsystem and the hardened
//! suite runner: a planted panic never takes down a `--jobs` pool, an
//! FSM that can never reach `done` yields a Timeout verdict on all three
//! engines, a seeded campaign classifies every injection without a
//! single harness crash, and the fault machinery is invisible on clean
//! runs.

use fpgatest::faults::{run_campaign, CampaignOptions, FaultSpec, InjectionOutcome};
use fpgatest::flow::{Engine, FlowOptions, TestFlow};
use fpgatest::stimulus::Stimulus;
use fpgatest::suite::{parse_manifest, CaseResult, Suite, TestCase};

const PROGRAM: &str = "mem inp[4]; mem out[4];
void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = inp[i] * 2 + 1; } }";

/// A program whose loop body touches no memory: forcing its loop
/// condition keeps the FSM spinning forever without tripping the
/// out-of-range store guard, so the only way out is a watchdog.
const HANG_PROGRAM: &str = "mem out[1];
void main() { int i; int x; x = 0; for (i = 0; i < 4; i = i + 1) { x = x + 2; } out[0] = x; }";

fn stimulus() -> Stimulus {
    Stimulus::from_values([3, 1, 4, 1])
}

fn passing_case(name: &str) -> TestCase {
    TestCase::new(name, PROGRAM).with_stimulus("inp", stimulus())
}

/// The signal steering the compiled loop's conditional FSM transition —
/// discovered from the design rather than hard-coded, so the test
/// survives signal-naming changes in the compiler.
fn loop_condition_signal(source: &str) -> String {
    let program = nenya::lang::parse(source).unwrap();
    let design =
        nenya::compile_program("probe", &program, &nenya::CompileOptions::default()).unwrap();
    design
        .configs
        .iter()
        .flat_map(|c| c.fsm.states.iter())
        .flat_map(|s| s.transitions.iter())
        .find_map(|t| t.cond.clone())
        .expect("a loop program compiles to a conditional transition")
        .0
}

/// The stuck-at polarity that traps [`HANG_PROGRAM`]'s FSM in its loop
/// forever. One of the two polarities must hang (the other exits early
/// and merely miscomputes); which one depends on how the compiler
/// phrased the branch, so probe the event engine.
fn hang_fault() -> FaultSpec {
    let signal = loop_condition_signal(HANG_PROGRAM);
    for value in [true, false] {
        let fault = FaultSpec::StuckAt {
            signal: signal.clone(),
            bit: 0,
            value,
        };
        let flow = TestFlow::new("probe", HANG_PROGRAM).with_options(FlowOptions {
            faults: vec![fault.clone()],
            max_ticks: 20_000,
            ..FlowOptions::default()
        });
        if matches!(flow.run(), Err(fpgatest::flow::FlowError::Timeout { .. })) {
            return fault;
        }
    }
    panic!("neither polarity of stuck-at on '{signal}' hangs the FSM");
}

#[test]
fn planted_panic_is_isolated_and_the_parallel_report_is_complete() {
    let mut boom = passing_case("boom");
    boom.options.planted_panic = true;
    let suite = Suite::new()
        .with_case(passing_case("a"))
        .with_case(boom)
        .with_case(passing_case("b"))
        .with_case(passing_case("c"));
    let report = suite.run_parallel(4);

    // Every case reports, in suite order, despite the mid-pool panic.
    let names: Vec<&str> = report.results.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, ["a", "boom", "b", "c"]);
    assert_eq!(report.passed(), 3, "{}", report.render());
    match &report.results[1].1 {
        CaseResult::Crashed(message) => {
            assert!(message.contains("planted panic"), "{message}");
        }
        other => panic!("expected Crashed, got {other:?}"),
    }
    assert_eq!(report.crashed(), 1);
    assert_eq!(report.exit_code(), 3, "a crash outranks ordinary failure");
    assert!(report.render().contains("CRASH"), "{}", report.render());
}

#[test]
fn hanging_case_in_a_pool_times_out_and_the_report_is_complete() {
    let mut hang = TestCase::new("hang", HANG_PROGRAM);
    hang.options.faults = vec![hang_fault()];
    // A tick budget large enough that the wall clock trips first.
    hang.options.max_ticks = u64::MAX / 16;
    hang.options.wall_timeout_ms = Some(300);
    let suite = Suite::new()
        .with_case(passing_case("a"))
        .with_case(hang)
        .with_case(passing_case("b"));
    let report = suite.run_parallel(3);

    assert_eq!(report.results.len(), 3);
    assert_eq!(report.passed(), 2, "{}", report.render());
    match &report.results[1].1 {
        CaseResult::TimedOut { reason } => {
            assert!(reason.contains("wall clock"), "{reason}");
        }
        other => panic!("expected TimedOut, got {other:?}"),
    }
    assert_eq!(report.timed_out(), 1);
    assert_eq!(report.exit_code(), 4);
    assert!(report.render().contains("TIMEOUT"), "{}", report.render());
}

#[test]
fn fsm_never_done_times_out_on_all_three_engines() {
    let fault = hang_fault();
    let dir = std::env::temp_dir().join("fpgatest_faults_never_done");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("p.src"), HANG_PROGRAM).unwrap();
    let manifest =
        format!("case never_done\n  source p.src\n  fault {fault}\n  max_ticks 20000\n");

    for engine in [Engine::Event, Engine::Cycle, Engine::Level] {
        let mut suite = parse_manifest(&manifest, &dir).unwrap();
        suite.set_engine(engine);
        let report = suite.run();
        match &report.results[0].1 {
            CaseResult::TimedOut { reason } => {
                assert!(reason.contains("20000"), "engine {engine}: {reason}");
            }
            other => panic!("engine {engine}: expected TimedOut, got {other:?}"),
        }
        assert_eq!(report.exit_code(), 4, "engine {engine}");
        assert_eq!(report.results[0].1.status(), "timeout", "engine {engine}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn planted_hang_exits_the_cli_with_the_timeout_code() {
    let dir = std::env::temp_dir().join("fpgatest_faults_cli_timeout");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("p.src"), HANG_PROGRAM).unwrap();
    let fault = hang_fault();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_fpgatest"))
        .args([
            "test",
            "p.src",
            "--fault",
            &fault.to_string(),
            "--max-ticks",
            "20000",
        ])
        .current_dir(&dir)
        .output()
        .expect("fpgatest runs");
    assert_eq!(
        output.status.code(),
        Some(4),
        "stdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn seeded_campaign_classifies_every_injection_without_crashing() {
    let case = passing_case("campaign");
    let options = CampaignOptions {
        seed: 1,
        sites: 200,
        engine: Engine::Event,
        max_ticks: Some(20_000),
        ..CampaignOptions::default()
    };
    let report = run_campaign(&case, &options).expect("campaign runs");

    assert!(
        report.site_pool >= 200,
        "pool of {} sites is too small to sample 200",
        report.site_pool
    );
    assert_eq!(report.injections.len(), 200);
    assert_eq!(
        report.count(InjectionOutcome::Crashed),
        0,
        "harness crashes:\n{}",
        report.render()
    );
    assert!(
        report.count(InjectionOutcome::Detected) > 0,
        "a 200-site campaign must detect something:\n{}",
        report.render()
    );
    assert!(report.detected_fraction() > 0.0);

    // Same seed, same sites: bit-identical log.
    let again = run_campaign(&case, &options).expect("campaign reruns");
    assert_eq!(report.render(), again.render());
}

#[test]
fn batch_campaign_matches_level_campaign_classification() {
    // The batch engine dispatches 64 fault sites per walk; every lane's
    // verdict (outcome and detail string) must be identical to what a
    // sequential level-engine campaign over the same seeded site list
    // produces.
    let case = passing_case("batch_parity");
    let mut reports = Vec::new();
    for engine in [Engine::Level, Engine::Batch] {
        let options = CampaignOptions {
            seed: 7,
            sites: 150,
            engine,
            max_ticks: Some(20_000),
            ..CampaignOptions::default()
        };
        reports.push(run_campaign(&case, &options).expect("campaign runs"));
    }
    let (level, batch) = (&reports[0], &reports[1]);
    assert_eq!(level.injections.len(), batch.injections.len());
    for (l, b) in level.injections.iter().zip(&batch.injections) {
        assert_eq!(l.fault, b.fault, "seeded site lists diverged");
        assert_eq!(
            (&l.outcome, &l.detail),
            (&b.outcome, &b.detail),
            "batch lane disagrees with sequential level run on {}",
            l.fault
        );
    }
    assert!(level.count(InjectionOutcome::Detected) > 0);
}

#[test]
fn no_engine_reports_transient_skips() {
    // Transient faults (flip/seu) are now expressible on every engine:
    // a single-fault flow run on the level engine injects instead of
    // skipping, and a full campaign on each engine classifies every
    // transient site as something other than Skipped.
    let case = passing_case("transient_everywhere");
    let flow = TestFlow::new(&case.name, &case.source)
        .stimulus("inp", stimulus())
        .with_options(FlowOptions {
            engine: Engine::Level,
            faults: vec![FaultSpec::BitFlip {
                signal: loop_condition_signal(PROGRAM),
                bit: 0,
                cycle: 2,
            }],
            ..FlowOptions::default()
        });
    let report = flow.run().expect("flow runs");
    assert!(
        report.fault_skips.is_empty(),
        "the level engine must inject transients, not skip them: {:?}",
        report.fault_skips
    );

    for engine in Engine::ALL {
        let options = CampaignOptions {
            seed: 3,
            sites: 120,
            engine,
            max_ticks: Some(20_000),
            ..CampaignOptions::default()
        };
        let campaign = run_campaign(&case, &options).expect("campaign runs");
        assert!(
            campaign.injections.iter().any(|r| r.fault.is_transient()),
            "engine {engine}: the sampled campaign must include transient sites"
        );
        for record in &campaign.injections {
            assert_ne!(
                record.outcome,
                InjectionOutcome::Skipped,
                "engine {engine}: {} must classify, got Skipped: {}",
                record.fault,
                record.detail
            );
        }
    }
}

#[test]
fn transient_faults_agree_across_cycle_and_level_engines() {
    // The same scheduled flip must produce the same verdict and the
    // same final memories on both compiled engines — the level engine's
    // incremental settle reaches the sweeper's fixpoint exactly.
    let signal = loop_condition_signal(PROGRAM);
    for cycle in [1u64, 2, 3, 5, 8] {
        let fault = FaultSpec::BitFlip {
            signal: signal.clone(),
            bit: 0,
            cycle,
        };
        let mut reports = Vec::new();
        for engine in [Engine::Cycle, Engine::Level] {
            let flow = TestFlow::new("transient_xengine", PROGRAM)
                .stimulus("inp", stimulus())
                .with_options(FlowOptions {
                    engine,
                    faults: vec![fault.clone()],
                    max_ticks: 20_000,
                    ..FlowOptions::default()
                });
            match flow.run() {
                Ok(report) => reports.push(Some((report.passed, report.sim_mems))),
                Err(fpgatest::flow::FlowError::Timeout { .. }) => reports.push(None),
                Err(e) => panic!("engine {engine}, cycle {cycle}: unexpected error: {e}"),
            }
        }
        assert_eq!(
            reports[0], reports[1],
            "cycle and level engines disagree on {fault}"
        );
    }
}

#[test]
fn clean_runs_are_untouched_by_the_fault_machinery() {
    let baseline = TestFlow::new("clean", PROGRAM)
        .stimulus("inp", stimulus())
        .run()
        .expect("clean flow");
    assert!(baseline.passed);
    assert!(baseline.fault_skips.is_empty());

    // The wall-clock watchdog path (flow on its own thread) must produce
    // the very same verdict and counters as the direct path.
    let mut watched_case = passing_case("clean");
    watched_case.options.wall_timeout_ms = Some(60_000);
    let report = Suite::new().with_case(watched_case).run();
    let CaseResult::Finished(watched) = &report.results[0].1 else {
        panic!("expected Finished, got {:?}", report.results[0].1);
    };
    assert!(watched.passed);
    assert_eq!(watched.sim_mems, baseline.sim_mems);
    assert_eq!(
        watched.runs.iter().map(|r| r.summary.events).collect::<Vec<_>>(),
        baseline.runs.iter().map(|r| r.summary.events).collect::<Vec<_>>()
    );
    assert_eq!(
        watched.runs.iter().map(|r| r.cycles).collect::<Vec<_>>(),
        baseline.runs.iter().map(|r| r.cycles).collect::<Vec<_>>()
    );
}

#[test]
fn static_faults_inject_on_all_three_engines() {
    // A stuck-at on the loop condition must change behaviour everywhere:
    // each engine either hangs or miscomputes, but never passes clean.
    let fault = hang_fault();
    for engine in [Engine::Event, Engine::Cycle, Engine::Level] {
        let flow = TestFlow::new("static", HANG_PROGRAM).with_options(FlowOptions {
            engine,
            faults: vec![fault.clone()],
            max_ticks: 20_000,
            ..FlowOptions::default()
        });
        match flow.run() {
            Err(fpgatest::flow::FlowError::Timeout { .. }) => {}
            Ok(report) => assert!(
                !report.passed,
                "engine {engine}: stuck loop condition must not pass"
            ),
            Err(e) => panic!("engine {engine}: unexpected flow error: {e}"),
        }
    }
}
