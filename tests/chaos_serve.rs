//! Chaos harness for the fault-tolerance layer: workers SIGKILLed
//! (panicked) mid-job by the deterministic `--chaos` hook, clients that
//! stall, flood, or speak garbage, queues pushed past their admission
//! bound, and checkpoints torn mid-write. The invariants under test:
//!
//! - the daemon stays up through all of it;
//! - every accepted job reaches **exactly one** terminal outcome;
//! - a resumed campaign is byte-identical to an uninterrupted one.

use fpgatest::events::EventSink;
use fpgatest::faults::{run_campaign_sharded, CampaignOptions, ShardedCampaignOptions};
use fpgatest::flow::Engine;
use fpgatest::serve::{Client, ClientError, JobSpec, ServeOptions, Server};
use fpgatest::stimulus::Stimulus;
use fpgatest::suite::TestCase;
use fpgatest::telemetry::Json;
use fpgatest::workloads;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SCALE_SRC: &str = "mem inp[8]; mem out[8];
     void main() { int i; for (i = 0; i < 8; i = i + 1) { out[i] = inp[i] * 3; } }";

/// Seed 42 kills the worker on chaos ticks 3 and 7 (verified against
/// the SplitMix64 in `serve::chaos_maybe_kill_worker`), so a 12-job
/// burst is guaranteed to see at least two mid-job worker deaths.
const CHAOS_SEED: u64 = 42;

fn scale_job(name: &str) -> JobSpec {
    JobSpec::test(name, SCALE_SRC).stimulus("inp", Stimulus::from_values([1, 2, 3, 4, 5, 6, 7, 8]))
}

/// A job that hangs until its wall-clock watchdog: occupies a worker
/// for ~`wall_ms` and then finishes with the `timeout` verdict. The
/// 1024-point FDCT needs multiple seconds to compile and simulate in a
/// debug build, so a sub-second wall budget is guaranteed to trip.
fn hog_job(wall_ms: u64) -> JobSpec {
    let mut hog = JobSpec::test("fdct-hog", &workloads::fdct_source(1024))
        .stimulus("img", Stimulus::from_values(workloads::test_image(1024)));
    hog.width = Some(32);
    hog.wall_ms = Some(wall_ms);
    hog
}

fn start_server(options: ServeOptions) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", options).expect("bind test daemon");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn stat(stats: &Json, name: &str) -> u64 {
    stats
        .get(name)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stats carries {name}: {}", stats.emit()))
}

/// A raw protocol connection, bypassing `Client` so tests can send
/// malformed frames and count response lines without interpretation.
struct RawConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawConn {
    fn connect(addr: &str) -> RawConn {
        let writer = TcpStream::connect(addr).expect("raw connect");
        writer.set_nodelay(true).expect("nodelay");
        writer
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        RawConn { reader, writer }
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("raw write");
        self.writer.flush().expect("raw flush");
    }

    fn send_json(&mut self, json: &Json) {
        self.send_bytes(format!("{}\n", json.emit()).as_bytes());
    }

    /// Reads one response line; `None` means the server closed the
    /// connection. Panics after 60 s — a wedged daemon IS the failure.
    fn read_line(&mut self) -> Option<Json> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => None,
            Ok(_) => Some(Json::parse(line.trim()).expect("server speaks JSON")),
            Err(e) => panic!("daemon wedged: no response within the read timeout: {e}"),
        }
    }

    /// Asserts the next line is a typed `error` with `code`.
    fn expect_error(&mut self, code: &str) {
        let json = self.read_line().expect("error line before close");
        assert_eq!(json.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(
            json.get("code").and_then(Json::as_str),
            Some(code),
            "typed code: {}",
            json.emit()
        );
    }

    /// Asserts the server closed the connection. A reset counts: the
    /// server closing with unread bytes still in its receive buffer
    /// (a flood it refused to parse) surfaces as RST, not FIN.
    fn expect_eof(&mut self) {
        let mut rest = Vec::new();
        match self.reader.read_to_end(&mut rest) {
            Ok(0) => {}
            Ok(n) => panic!("expected EOF, got {n} more bytes"),
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
            Err(e) => panic!("expected EOF, got error: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Worker chaos: exactly-once terminal outcomes
// ---------------------------------------------------------------------------

/// With the chaos hook panicking workers mid-job, a 12-job burst still
/// delivers exactly one `job-finished` line per accepted id, every
/// verdict is `pass` (the supervisor requeues and a later attempt
/// succeeds), and the stats confirm the supervisor actually restarted
/// workers. Counted over the raw wire, not through `Client`, so a
/// duplicated or dropped terminal line cannot hide.
#[test]
fn chaos_worker_kills_preserve_exactly_one_terminal_outcome_per_job() {
    let (addr, server) = start_server(ServeOptions {
        workers: 2,
        retries: 2,
        backoff_base_ms: 1,
        chaos: Some(CHAOS_SEED),
        ..ServeOptions::default()
    });

    const JOBS: usize = 12;
    let mut conn = RawConn::connect(&addr);
    for i in 0..JOBS {
        conn.send_json(&Json::obj([
            ("type", Json::from("submit")),
            ("job", scale_job(&format!("chaos-{i}")).to_json()),
        ]));
    }

    // Read until every submission is both accepted and finished; a
    // fast worker can race its job-finished line ahead of the
    // dispatcher's job-accepted line, so neither count alone is enough.
    let mut accepted: Vec<u64> = Vec::new();
    let mut finished: HashMap<u64, String> = HashMap::new();
    while finished.len() < JOBS || accepted.len() < JOBS {
        let json = conn.read_line().expect("line before close");
        match json.get("type").and_then(Json::as_str) {
            Some("job-accepted") => {
                accepted.push(json.get("id").and_then(Json::as_u64).expect("id"));
            }
            Some("job-finished") => {
                let id = json.get("id").and_then(Json::as_u64).expect("id");
                let verdict = json
                    .get("verdict")
                    .and_then(Json::as_str)
                    .expect("verdict")
                    .to_string();
                let dup = finished.insert(id, verdict);
                assert!(dup.is_none(), "job {id} got a second terminal outcome");
            }
            other => panic!("unexpected response type {other:?}"),
        }
    }
    assert_eq!(accepted.len(), JOBS, "every submission was accepted");
    for id in &accepted {
        assert_eq!(
            finished.get(id).map(String::as_str),
            Some("pass"),
            "job {id} survived the chaos"
        );
    }

    let mut control = Client::connect(&addr).expect("connect control");
    let stats = control.stats().expect("stats");
    assert_eq!(stat(&stats, "submitted"), JOBS as u64);
    assert_eq!(stat(&stats, "finished"), JOBS as u64);
    assert_eq!(stat(&stats, "inflight"), 0);
    assert_eq!(stat(&stats, "queued"), 0);
    assert!(
        stat(&stats, "worker_restarts") >= 2,
        "seed {CHAOS_SEED} kills at least two workers in a 12-job burst: {}",
        stats.emit()
    );

    // The daemon is still healthy after the carnage (chaos stays on —
    // the supervisor absorbs any further kills too).
    let ok = control.run_job(&scale_job("post-chaos")).expect("post-chaos job");
    assert_eq!(ok.verdict, "pass");

    control.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

/// A job whose every attempt crashes burns its retry budget and lands
/// in quarantine: typed `quarantined` verdict, the attempt count in the
/// outcome, and a `quarantined` entry in the stats.
#[test]
fn retry_exhaustion_quarantines_the_job() {
    let (addr, server) = start_server(ServeOptions {
        workers: 1,
        retries: 2,
        backoff_base_ms: 1,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(&addr).expect("connect");

    let mut poison = scale_job("poison");
    poison.planted_panic = true;
    let outcome = client.run_job(&poison).expect("quarantine is terminal");
    assert_eq!(outcome.verdict, "quarantined");
    assert_eq!(outcome.exit_code, 3, "keeps the last failure's exit code");
    assert_eq!(outcome.attempts, 3, "retries 2 = three attempts");
    assert!(
        outcome.detail.contains("quarantined after 3 attempts"),
        "detail names the budget: {}",
        outcome.detail
    );

    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "retried"), 2);
    let quarantined = match stats.get("quarantined") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("stats carries the quarantined list, got {other:?}"),
    };
    assert_eq!(quarantined.len(), 1);
    assert_eq!(
        quarantined[0].get("id").and_then(Json::as_u64),
        Some(outcome.id)
    );

    // Quarantine poisons the job, not the daemon.
    let ok = client.run_job(&scale_job("after-poison")).expect("healthy job");
    assert_eq!(ok.verdict, "pass");

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

// ---------------------------------------------------------------------------
// Hostile clients: deadlines, frame caps, protocol garbage
// ---------------------------------------------------------------------------

/// A client that sends half a request line and stalls gets the typed
/// `deadline` error and its connection closed — it cannot pin a
/// connection thread forever (slow-loris guard).
#[test]
fn stalled_partial_request_line_gets_the_deadline_error() {
    let (addr, server) = start_server(ServeOptions {
        read_deadline_ms: 150,
        ..ServeOptions::default()
    });

    let mut stall = RawConn::connect(&addr);
    stall.send_bytes(b"{\"type\":\"stat"); // no newline, ever
    stall.expect_error("deadline");
    stall.expect_eof();

    // The stall cost the daemon one connection thread, nothing more.
    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.run_job(&scale_job("after-stall")).expect("job").verdict, "pass");
    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

/// A request line past the frame cap gets the typed `frame-too-long`
/// error and a closed connection — with or without a newline, so a
/// newline-free byte flood cannot grow the buffer without bound.
#[test]
fn oversized_request_lines_get_the_frame_too_long_error() {
    let (addr, server) = start_server(ServeOptions {
        max_line_len: 1024,
        ..ServeOptions::default()
    });

    // Oversized but newline-terminated.
    let mut terminated = RawConn::connect(&addr);
    let mut flood = vec![b'x'; 4096];
    flood.push(b'\n');
    terminated.send_bytes(&flood);
    terminated.expect_error("frame-too-long");
    terminated.expect_eof();

    // A newline-free flood trips the same cap from the buffer side.
    let mut unterminated = RawConn::connect(&addr);
    unterminated.send_bytes(&vec![b'y'; 4096]);
    unterminated.expect_error("frame-too-long");
    unterminated.expect_eof();

    let mut client = Client::connect(&addr).expect("connect");
    assert_eq!(client.run_job(&scale_job("after-flood")).expect("job").verdict, "pass");
    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

/// Malformed JSON, structurally valid but unknown requests, and binary
/// garbage each get a typed `bad-request` error on the same connection,
/// and a well-formed job afterwards still succeeds.
#[test]
fn protocol_garbage_gets_typed_errors_and_the_daemon_keeps_serving() {
    let (addr, server) = start_server(ServeOptions::default());
    let mut conn = RawConn::connect(&addr);

    conn.send_bytes(b"{this is not json\n");
    conn.expect_error("bad-request");

    conn.send_json(&Json::obj([("type", Json::from("frobnicate"))]));
    conn.expect_error("bad-request");

    conn.send_json(&Json::obj([("no-type", Json::from(1u64))]));
    conn.expect_error("bad-request");

    conn.send_bytes(b"\x00\x01\xfe\xff\x80garbage\n");
    conn.expect_error("bad-request");

    // Same connection, well-formed request: still served.
    conn.send_json(&Json::obj([
        ("type", Json::from("submit")),
        ("job", scale_job("after-garbage").to_json()),
    ]));
    let accepted = conn.read_line().expect("accepted");
    assert_eq!(
        accepted.get("type").and_then(Json::as_str),
        Some("job-accepted")
    );
    let done = conn.read_line().expect("finished");
    assert_eq!(done.get("type").and_then(Json::as_str), Some("job-finished"));
    assert_eq!(done.get("verdict").and_then(Json::as_str), Some("pass"));

    let mut client = Client::connect(&addr).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

// ---------------------------------------------------------------------------
// Backpressure: bounded admission and load shedding
// ---------------------------------------------------------------------------

/// With one worker occupied and the admission queue full, the next
/// submission gets the typed `overloaded` rejection; the accepted jobs
/// still finish normally.
#[test]
fn full_admission_queue_rejects_with_the_typed_overloaded_error() {
    let (addr, server) = start_server(ServeOptions {
        workers: 1,
        max_queue: 1,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(&addr).expect("connect");

    let hog_id = client.submit(&hog_job(600)).expect("submit hog");
    std::thread::sleep(Duration::from_millis(150)); // worker picks up the hog
    let queued_id = client.submit(&scale_job("queued")).expect("fills the queue");

    match client.submit(&scale_job("rejected")) {
        Err(ClientError::Rejected { code, .. }) => assert_eq!(code, "overloaded"),
        other => panic!("full queue must reject, got {other:?}"),
    }

    assert_eq!(client.wait(hog_id).expect("hog").verdict, "timeout");
    assert_eq!(client.wait(queued_id).expect("queued").verdict, "pass");
    let stats = client.stats().expect("stats");
    assert_eq!(stat(&stats, "overloaded"), 1);
    assert_eq!(stat(&stats, "finished"), 2);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

/// The shed shutdown cancels the queue instead of running it: each
/// queued job still gets its terminal `job-finished` line (verdict
/// `cancelled`), the running job drains normally, and the ack reports
/// how many jobs were shed.
#[test]
fn shed_shutdown_cancels_queued_jobs_with_terminal_outcomes() {
    let (addr, server) = start_server(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    });
    let mut submitter = Client::connect(&addr).expect("connect submitter");

    let hog_id = submitter.submit(&hog_job(600)).expect("submit hog");
    std::thread::sleep(Duration::from_millis(150));
    let q1 = submitter.submit(&scale_job("shed-1")).expect("submit shed-1");
    let q2 = submitter.submit(&scale_job("shed-2")).expect("submit shed-2");

    let shedder = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut control = Client::connect(&addr).expect("connect shedder");
            control.shutdown_shed().expect("shed shutdown acknowledges")
        }
    });

    for id in [q1, q2] {
        let outcome = submitter.wait(id).expect("shed outcome");
        assert_eq!(outcome.verdict, "cancelled", "queued job was shed");
        assert_eq!(outcome.exit_code, 2);
        assert!(
            outcome.detail.contains("shed"),
            "detail says why: {}",
            outcome.detail
        );
    }
    assert_eq!(submitter.wait(hog_id).expect("hog").verdict, "timeout");

    let ack = shedder.join().expect("shedder thread");
    assert_eq!(ack.get("shed").and_then(Json::as_u64), Some(2));
    server.join().expect("server thread").expect("server run");
}

// ---------------------------------------------------------------------------
// Client-side resilience: disconnects and resume-by-id
// ---------------------------------------------------------------------------

/// A client that vanishes mid-event-stream must not take the job with
/// it: the daemon's writes fail (EPIPE), the sink is muted, and the job
/// still reaches its normal terminal outcome — verdict, ledger line,
/// and stats all unchanged.
#[test]
fn client_disconnect_mid_stream_mutes_events_without_losing_the_job() {
    let dir = std::env::temp_dir().join("fpgatest_chaos_epipe");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ledger = dir.join("serve.ledger");

    let (addr, server) = start_server(ServeOptions {
        workers: 1,
        ledger: Some(ledger.clone()),
        ..ServeOptions::default()
    });

    let id = {
        let mut doomed = Client::connect(&addr).expect("connect doomed");
        let mut spec = scale_job("epipe");
        spec.events = true; // stream events at the connection that dies
        doomed.submit(&spec).expect("submit")
        // `doomed` drops here: the socket closes while the job runs.
    };

    // The job still finishes; poll its state from a second connection.
    let mut observer = Client::connect(&addr).expect("connect observer");
    let outcome = loop {
        match observer.result(id).expect("result") {
            Some(outcome) => break outcome,
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    };
    assert_eq!(outcome.verdict, "pass", "orphaned job completes normally");
    assert_eq!(outcome.attempts, 1);

    let stats = observer.stats().expect("stats");
    assert_eq!(stat(&stats, "submitted"), 1);
    assert_eq!(stat(&stats, "finished"), 1);

    let text = std::fs::read_to_string(&ledger).expect("ledger written");
    assert!(
        text.contains("epipe") && text.contains("pass"),
        "ledger records the orphaned job's pass: {text}"
    );

    observer.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Losing the connection does not lose the job: after a severed socket,
/// `wait_or_resubmit` reconnects and recovers the terminal outcome via
/// the `result` replay; for an id the daemon never issued it falls back
/// to resubmitting the spec.
#[test]
fn severed_client_resumes_by_job_id_or_resubmits() {
    let (addr, server) = start_server(ServeOptions::default());
    let spec = scale_job("resume-me");

    // Resume path: the job finishes while the client is gone.
    let mut client = Client::connect(&addr).expect("connect");
    let id = client.submit(&spec).expect("submit");
    let mut observer = Client::connect(&addr).expect("connect observer");
    while observer.result(id).expect("poll").is_none() {
        std::thread::sleep(Duration::from_millis(20));
    }
    client.sever();
    let outcome = client.wait_or_resubmit(id, &spec).expect("resume by id");
    assert_eq!(outcome.id, id, "same job, replayed");
    assert_eq!(outcome.verdict, "pass");

    // Resubmit path: an id from "before the daemon restarted" draws the
    // unknown-job rejection, and the client transparently resubmits.
    client.sever();
    let outcome = client
        .wait_or_resubmit(id + 1_000_000, &spec)
        .expect("resubmit on unknown id");
    assert_eq!(outcome.verdict, "pass");
    assert_ne!(outcome.id, id + 1_000_000, "a fresh submission ran");

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

// ---------------------------------------------------------------------------
// Checkpoint chaos: torn files, salvage, byte-identical resume
// ---------------------------------------------------------------------------

const CAMPAIGN_PROGRAM: &str = "mem inp[4]; mem out[4];
void main() { int i; for (i = 0; i < 4; i = i + 1) { out[i] = inp[i] * 2 + 1; } }";

fn campaign_case(name: &str) -> TestCase {
    TestCase::new(name, CAMPAIGN_PROGRAM).with_stimulus("inp", Stimulus::from_values([3, 1, 4, 1]))
}

fn campaign_options(sites: usize) -> CampaignOptions {
    CampaignOptions {
        seed: 5,
        sites,
        engine: Engine::Event,
        max_ticks: None,
        events: EventSink::disabled(),
    }
}

/// Records as comparable `(fault, outcome, detail)` strings.
fn record_strings(report: &fpgatest::faults::CampaignReport) -> Vec<(String, String, String)> {
    report
        .injections
        .iter()
        .map(|r| (r.fault.to_string(), r.outcome.to_string(), r.detail.clone()))
        .collect()
}

/// Kill a sharded campaign mid-run, tear its checkpoint (trailing
/// garbage — a torn concurrent write), then `--resume`: the salvage
/// loader recovers the longest valid prefix and the finished campaign
/// is byte-identical to an uninterrupted reference run.
#[test]
fn torn_checkpoint_salvages_and_resumes_byte_identical() {
    let dir = std::env::temp_dir().join("fpgatest_chaos_torn_checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let checkpoint = dir.join("faults.ckpt");

    let case = campaign_case("tornckpt");
    let reference = run_campaign_sharded(
        &case,
        &campaign_options(48),
        &ShardedCampaignOptions {
            shards: 2,
            ..ShardedCampaignOptions::default()
        },
    )
    .expect("reference run");
    assert!(!reference.interrupted);

    // Interrupt mid-campaign via the cooperative stop flag.
    let stop = Arc::new(AtomicBool::new(false));
    let timer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            stop.store(true, Ordering::SeqCst);
        })
    };
    let first = run_campaign_sharded(
        &case,
        &campaign_options(48),
        &ShardedCampaignOptions {
            shards: 2,
            checkpoint: Some(checkpoint.clone()),
            checkpoint_every: 1,
            stop: Some(stop),
            ..ShardedCampaignOptions::default()
        },
    )
    .expect("interrupted run");
    timer.join().expect("timer thread");

    let final_records = if !first.interrupted {
        // Outran the timer: the run is its own uninterrupted comparison.
        record_strings(&first.report)
    } else {
        // Tear the checkpoint the way a dying writer would: valid JSON
        // followed by garbage bytes. (The interrupt can land before the
        // first save; then there is nothing to tear and the rerun is a
        // plain full campaign.)
        let torn = checkpoint.exists();
        if torn {
            let mut bytes = std::fs::read(&checkpoint).expect("read checkpoint");
            bytes.extend_from_slice(b"\xff\xfe{{{ torn mid-write");
            std::fs::write(&checkpoint, &bytes).expect("tear checkpoint");
        }
        let resumed = run_campaign_sharded(
            &case,
            &campaign_options(48),
            &ShardedCampaignOptions {
                shards: 2,
                resume: torn.then(|| checkpoint.clone()),
                ..ShardedCampaignOptions::default()
            },
        )
        .expect("salvage + resume");
        assert!(!resumed.interrupted);
        if torn {
            assert!(resumed.resumed > 0, "the salvaged prefix was reused");
            assert!(
                resumed.salvage.is_some(),
                "the torn checkpoint was reported as salvaged"
            );
        }
        record_strings(&resumed.report)
    };
    assert_eq!(
        record_strings(&reference.report),
        final_records,
        "resumed campaign is byte-identical to the uninterrupted one"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Truncating the primary checkpoint to half its bytes (no garbage, a
/// clean torn tail) falls back to the previous generation and still
/// resumes to the reference bytes.
#[test]
fn truncated_checkpoint_falls_back_to_the_previous_generation() {
    let dir = std::env::temp_dir().join("fpgatest_chaos_truncated_checkpoint");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let checkpoint = dir.join("faults.ckpt");

    let case = campaign_case("truncckpt");
    let reference = run_campaign_sharded(
        &case,
        &campaign_options(32),
        &ShardedCampaignOptions {
            shards: 2,
            ..ShardedCampaignOptions::default()
        },
    )
    .expect("reference run");

    let stop = Arc::new(AtomicBool::new(false));
    let timer = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            stop.store(true, Ordering::SeqCst);
        })
    };
    let first = run_campaign_sharded(
        &case,
        &campaign_options(32),
        &ShardedCampaignOptions {
            shards: 2,
            checkpoint: Some(checkpoint.clone()),
            checkpoint_every: 1,
            stop: Some(stop),
            ..ShardedCampaignOptions::default()
        },
    )
    .expect("interrupted run");
    timer.join().expect("timer thread");

    let final_records = if !first.interrupted {
        // Outran the timer: the run is its own uninterrupted comparison.
        record_strings(&first.report)
    } else {
        // The save cadence can lag the merge count, so the interrupt
        // may land before a second generation exists; only truncate
        // when there is a `.prev` to fall back to. (The exhaustive
        // every-byte-boundary truncation matrix lives in the campaign
        // unit tests.)
        let torn = checkpoint.with_extension("prev").exists();
        if torn {
            let bytes = std::fs::read(&checkpoint).expect("read checkpoint");
            std::fs::write(&checkpoint, &bytes[..bytes.len() / 2]).expect("truncate");
        }
        let resumed = run_campaign_sharded(
            &case,
            &campaign_options(32),
            &ShardedCampaignOptions {
                shards: 2,
                resume: checkpoint.exists().then(|| checkpoint.clone()),
                ..ShardedCampaignOptions::default()
            },
        )
        .expect("fallback + resume");
        assert!(!resumed.interrupted);
        if torn {
            assert!(
                resumed.salvage.is_some(),
                "the fallback generation was reported"
            );
        }
        record_strings(&resumed.report)
    };
    assert_eq!(record_strings(&reference.report), final_records);
    let _ = std::fs::remove_dir_all(&dir);
}
