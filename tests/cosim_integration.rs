//! Hardware/software co-simulation (the paper's future-work extension):
//! a behavioral CPU and a compiler-generated accelerator in one event
//! kernel, coupled by shared SRAM and the `done` handshake.

use eventsim::cpu::{Cpu, CpuInstr};
use eventsim::{RunOutcome, SimTime};
use fpgatest::elaborate::elaborate_config_with;
use nenya::{compile, CompileOptions};

fn accel_docs(n: usize) -> (xmlite::Document, xmlite::Document) {
    let source = format!(
        "mem inp[{n}]; mem out[{n}];
         void main() {{
             int i;
             for (i = 0; i < {n}; i = i + 1) {{ out[i] = inp[i] * 3 + 1; }}
         }}"
    );
    let design = compile("accel", &source, &CompileOptions::default()).expect("compiles");
    let config = &design.configs[0];
    (
        nenya::xml::emit_datapath(&config.datapath),
        nenya::xml::emit_fsm(&config.fsm),
    )
}

#[test]
fn cpu_postprocesses_fabric_results_via_shared_memory() {
    let n = 8;
    let (dp_doc, fsm_doc) = accel_docs(n);
    let mut cs = elaborate_config_with(&dp_doc, &fsm_doc, false).expect("elaborates");
    for addr in 0..n {
        cs.mems["inp"].store(addr, addr as i64);
    }
    let sum_port = cs.sim.add_signal("sum", 32);
    let program = vec![
        CpuInstr::WaitTrue(0),
        CpuInstr::Ldi(0),
        CpuInstr::SetX(0),
        CpuInstr::AddIdx,
        CpuInstr::AddX(1),
        CpuInstr::JmpIfXNe(n as i64, 3),
        CpuInstr::Out(0),
        CpuInstr::Halt,
    ];
    cs.sim.add_component(
        Cpu::new(
            "cpu0",
            cs.clk,
            program,
            cs.mems["out"].clone(),
            vec![cs.done],
            vec![(sum_port, 32)],
        )
        .with_stop_on_halt(true),
    );
    let summary = cs.sim.run(SimTime(10_000_000)).expect("runs");
    assert!(matches!(summary.outcome, RunOutcome::Stopped(ref m) if m.contains("halt")));
    let expected: i64 = (0..n as i64).map(|v| v * 3 + 1).sum();
    assert_eq!(cs.sim.value(sum_port).as_i64(), expected);
}

#[test]
fn cpu_waits_full_fabric_latency_before_reading() {
    // The CPU must see `done` only after the fabric finished; its halt
    // time therefore exceeds the fabric-only run time.
    let n = 8;
    let (dp_doc, fsm_doc) = accel_docs(n);

    // Fabric-only run time.
    let mut fabric_only = fpgatest::elaborate::elaborate_config(&dp_doc, &fsm_doc).unwrap();
    for addr in 0..n {
        fabric_only.mems["inp"].store(addr, 1);
    }
    let fabric_summary = fabric_only.sim.run(SimTime(10_000_000)).unwrap();
    let fabric_ticks = fabric_summary.end_time.ticks();

    // Co-sim run time.
    let mut cs = elaborate_config_with(&dp_doc, &fsm_doc, false).unwrap();
    for addr in 0..n {
        cs.mems["inp"].store(addr, 1);
    }
    let port = cs.sim.add_signal("sum", 32);
    cs.sim.add_component(
        Cpu::new(
            "cpu0",
            cs.clk,
            vec![
                CpuInstr::WaitTrue(0),
                CpuInstr::LdMem(0),
                CpuInstr::Out(0),
                CpuInstr::Halt,
            ],
            cs.mems["out"].clone(),
            vec![cs.done],
            vec![(port, 32)],
        )
        .with_stop_on_halt(true),
    );
    let summary = cs.sim.run(SimTime(10_000_000)).unwrap();
    assert!(
        summary.end_time.ticks() > fabric_ticks,
        "cpu halted at {} but fabric needs {}",
        summary.end_time.ticks(),
        fabric_ticks
    );
    assert_eq!(cs.sim.value(port).as_i64(), 4); // out[0] = 1*3+1
}

#[test]
fn cpu_can_feed_inputs_then_read_outputs_across_two_fabric_runs() {
    // Software-in-the-loop across *reconfigurations*: run the fabric once,
    // let the CPU double the outputs back into the input SRAM (shared
    // handles), then run a fresh fabric instance on the new inputs.
    let n = 4;
    let (dp_doc, fsm_doc) = accel_docs(n);

    // First fabric pass.
    let mut pass1 = fpgatest::elaborate::elaborate_config(&dp_doc, &fsm_doc).unwrap();
    for addr in 0..n {
        pass1.mems["inp"].store(addr, addr as i64 + 1);
    }
    pass1.sim.run(SimTime(10_000_000)).unwrap();
    let intermediate: Vec<i64> = pass1.mems["out"]
        .snapshot()
        .into_iter()
        .map(|w| w.expect("written"))
        .collect();

    // Software step between configurations (the role the paper gives the
    // RTG controller, here done by the CPU model over shared memory).
    let mut pass2 = fpgatest::elaborate::elaborate_config(&dp_doc, &fsm_doc).unwrap();
    for (addr, &v) in intermediate.iter().enumerate() {
        pass2.mems["inp"].store(addr, v * 2);
    }
    pass2.sim.run(SimTime(10_000_000)).unwrap();
    for (addr, &v) in intermediate.iter().enumerate() {
        assert_eq!(pass2.mems["out"].load(addr), Some((v * 2) * 3 + 1));
    }
}
