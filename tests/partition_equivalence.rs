//! Temporal partitioning must preserve functionality *in hardware*: the
//! FDCT split across two configurations (FDCT2) leaves exactly the same
//! memory contents as the monolithic design (FDCT1), with the
//! reconfiguration controller carrying SRAM state between configurations.

use fpgatest::flow::{FlowOptions, TestFlow};
use fpgatest::stimulus::Stimulus;
use fpgatest::workloads;
use nenya::CompileOptions;

fn fdct_report(pixels: usize, partitions: usize) -> fpgatest::TestReport {
    TestFlow::new("fdct", workloads::fdct_source(pixels))
        .with_options(FlowOptions {
            compile: CompileOptions {
                width: 32,
                partitions,
                ..CompileOptions::default()
            },
            ..FlowOptions::default()
        })
        .stimulus("img", Stimulus::from_values(workloads::test_image(pixels)))
        .run()
        .expect("flow runs")
}

#[test]
fn fdct2_hardware_equals_fdct1_hardware() {
    let fdct1 = fdct_report(128, 1);
    let fdct2 = fdct_report(128, 2);
    assert!(fdct1.passed, "{}", fdct1.render());
    assert!(fdct2.passed, "{}", fdct2.render());
    assert_eq!(fdct1.runs.len(), 1);
    assert_eq!(fdct2.runs.len(), 2);
    assert_eq!(
        fdct1.sim_mems["out"], fdct2.sim_mems["out"],
        "partitioning changed the result"
    );
    // Each configuration is a genuinely smaller design.
    let full_ops = fdct1.metrics.total_operators();
    for config in &fdct2.metrics.configs {
        assert!(config.operators < full_ops);
    }
}

#[test]
fn scalar_transfer_through_xfer_memory_works_in_hardware() {
    // A program whose partitions *must* communicate scalars: the second
    // half depends on values computed in the first.
    let source = "
        mem out[4];
        void main() {
            int a = 6;
            int b = a * 7;
            int c = b - a;
            out[0] = a;
            out[1] = b;
            out[2] = c;
            out[3] = a + b + c;
        }
    ";
    for partitions in [2usize, 3] {
        let report = TestFlow::new("xfer", source)
            .with_partitions(partitions)
            .run()
            .expect("flow runs");
        assert!(report.passed, "k={partitions}: {}", report.render());
        assert_eq!(report.sim_mems["out"][0], Some(6));
        assert_eq!(report.sim_mems["out"][1], Some(42));
        assert_eq!(report.sim_mems["out"][2], Some(36));
        assert_eq!(report.sim_mems["out"][3], Some(84));
        // The transfer memory exists and carried data.
        assert!(
            report.sim_mems.contains_key("__xfer"),
            "k={partitions}: transfer memory missing"
        );
        let transferred = report.sim_mems["__xfer"]
            .iter()
            .filter(|w| w.is_some())
            .count();
        assert!(transferred >= 2, "k={partitions}: nothing transferred");
    }
}

#[test]
fn three_way_partition_of_three_phase_program() {
    let source = "
        mem a[8]; mem b[8]; mem c[8];
        void main() {
            int i;
            for (i = 0; i < 8; i = i + 1) { a[i] = i * i; }
            int j;
            for (j = 0; j < 8; j = j + 1) { b[j] = a[j] + a[7 - j]; }
            int k;
            for (k = 0; k < 8; k = k + 1) { c[k] = b[k] >> 1; }
        }
    ";
    let mono = TestFlow::new("m", source).run().expect("runs");
    let split = TestFlow::new("s", source)
        .with_partitions(3)
        .run()
        .expect("runs");
    assert!(mono.passed && split.passed);
    assert_eq!(split.runs.len(), 3);
    for mem in ["a", "b", "c"] {
        assert_eq!(mono.sim_mems[mem], split.sim_mems[mem], "memory '{mem}'");
    }
}

#[test]
fn rtg_artifacts_describe_the_chain() {
    let report = fdct_report(64, 2);
    let artifacts = report.artifacts.expect("artifacts");
    let rtg = nenya::xml::parse_rtg(&xmlite::Document::parse(&artifacts.rtg_xml).unwrap())
        .expect("rtg parses");
    assert_eq!(rtg.nodes.len(), 2);
    assert_eq!(rtg.edges.len(), 1);
    let order: Vec<&str> = rtg
        .execution_order()
        .unwrap()
        .iter()
        .map(|n| n.id.as_str())
        .collect();
    assert_eq!(order, ["c0", "c1"]);
    assert!(artifacts.controller_src.contains("reconfigure"));
}
