//! The XML files are the interchange contract of the infrastructure:
//! everything the flow needs must survive the trip through rendered XML
//! text, exactly as when the compiler and the simulator are separate
//! processes sharing files.

use eventsim::{RunOutcome, SimTime};
use fpgatest::elaborate::elaborate_config;
use fpgatest::workloads;
use nenya::{compile, CompileOptions};
use xmlite::Document;

fn fdct_design() -> nenya::Design {
    compile(
        "fdct",
        &workloads::fdct_source(64),
        &CompileOptions {
            width: 32,
            ..CompileOptions::default()
        },
    )
    .expect("compiles")
}

#[test]
fn dialects_roundtrip_through_text_for_real_designs() {
    let design = fdct_design();
    for config in &design.configs {
        let dp_text = nenya::xml::emit_datapath(&config.datapath).to_pretty_string();
        let dp_back = nenya::xml::parse_datapath(&Document::parse(&dp_text).unwrap()).unwrap();
        assert_eq!(dp_back, config.datapath);

        let fsm_text = nenya::xml::emit_fsm(&config.fsm).to_pretty_string();
        let fsm_back = nenya::xml::parse_fsm(&Document::parse(&fsm_text).unwrap()).unwrap();
        assert_eq!(fsm_back, config.fsm);
    }
    let rtg_text = nenya::xml::emit_rtg(&design.rtg).to_pretty_string();
    let rtg_back = nenya::xml::parse_rtg(&Document::parse(&rtg_text).unwrap()).unwrap();
    assert_eq!(rtg_back, design.rtg);
}

#[test]
fn simulation_from_reserialized_xml_matches_direct_path() {
    let design = fdct_design();
    let config = &design.configs[0];
    let image = workloads::test_image(64);

    // Path A: documents straight from the compiler.
    let dp_doc = nenya::xml::emit_datapath(&config.datapath);
    let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
    // Path B: documents re-parsed from rendered text (the file trip).
    let dp_doc_b = Document::parse(&dp_doc.to_pretty_string()).unwrap();
    let fsm_doc_b = Document::parse(&fsm_doc.to_pretty_string()).unwrap();

    let mut results = Vec::new();
    for (dp, fsm) in [(&dp_doc, &fsm_doc), (&dp_doc_b, &fsm_doc_b)] {
        let mut cs = elaborate_config(dp, fsm).expect("elaborates");
        for (addr, &v) in image.iter().enumerate() {
            cs.mems["img"].store(addr, v);
        }
        let summary = cs.sim.run(SimTime(u64::MAX / 4)).expect("runs");
        assert!(matches!(summary.outcome, RunOutcome::Stopped(_)));
        results.push((cs.mems["out"].snapshot(), summary.events));
    }
    assert_eq!(results[0].0, results[1].0, "memory contents differ");
    assert_eq!(results[0].1, results[1].1, "event counts differ");
}

#[test]
fn loc_metrics_are_stable_across_reserialization() {
    let design = fdct_design();
    let config = &design.configs[0];
    let doc = nenya::xml::emit_datapath(&config.datapath);
    let reparsed = Document::parse(&doc.to_pretty_string()).unwrap();
    assert_eq!(xmlite::loc(&doc), xmlite::loc(&reparsed));
}

#[test]
fn stock_stylesheets_apply_to_all_real_dialect_documents() {
    let design = compile(
        "two",
        "mem a[4]; mem b[4]; void main() { int i; for (i = 0; i < 4; i = i + 1) { a[i] = i; } int j; for (j = 0; j < 4; j = j + 1) { b[j] = a[j]; } }",
        &CompileOptions {
            partitions: 2,
            ..CompileOptions::default()
        },
    )
    .expect("compiles");
    for config in &design.configs {
        let dp_doc = nenya::xml::emit_datapath(&config.datapath);
        let fsm_doc = nenya::xml::emit_fsm(&config.fsm);
        for sheet in [
            xform::stylesheets::datapath_to_hds(),
            xform::stylesheets::datapath_to_dot(),
        ] {
            let out = xform::apply(&sheet, dp_doc.root()).expect("applies");
            assert!(!out.is_empty());
        }
        for sheet in [
            xform::stylesheets::fsm_to_behavior(),
            xform::stylesheets::fsm_to_dot(),
        ] {
            let out = xform::apply(&sheet, fsm_doc.root()).expect("applies");
            assert!(!out.is_empty());
        }
    }
    let rtg_doc = nenya::xml::emit_rtg(&design.rtg);
    for sheet in [
        xform::stylesheets::rtg_to_controller(),
        xform::stylesheets::rtg_to_dot(),
    ] {
        let out = xform::apply(&sheet, rtg_doc.root()).expect("applies");
        assert!(out.contains("c0") && out.contains("c1"));
    }
}

#[test]
fn hand_authored_xml_is_a_usable_contract() {
    // The XML dialects are a public contract: a design written by hand
    // (or by some other tool) must elaborate and simulate without the
    // compiler being involved at all. This datapath doubles its input
    // register once per control step, three times: 5 -> 40.
    let datapath_xml = r#"
        <datapath name="doubler" width="16" clock="clk">
          <signals>
            <signal name="clk" width="1"/>
            <signal name="done" width="1"/>
            <signal name="acc_q" width="16"/>
            <signal name="acc_en" width="1"/>
            <signal name="acc_sel" width="1"/>
            <signal name="acc_d" width="16"/>
            <signal name="seed" width="16"/>
            <signal name="dbl" width="16"/>
          </signals>
          <cells>
            <cell name="clock0" kind="clock">
              <param key="period" value="10"/>
              <conn port="y" signal="clk"/>
            </cell>
            <cell name="cseed" kind="const">
              <param key="width" value="16"/>
              <param key="value" value="5"/>
              <conn port="y" signal="seed"/>
            </cell>
            <cell name="add0" kind="add">
              <param key="width" value="16"/>
              <conn port="a" signal="acc_q"/>
              <conn port="b" signal="acc_q"/>
              <conn port="y" signal="dbl"/>
            </cell>
            <cell name="mux_acc" kind="mux">
              <param key="width" value="16"/>
              <param key="inputs" value="2"/>
              <conn port="sel" signal="acc_sel"/>
              <conn port="i0" signal="seed"/>
              <conn port="i1" signal="dbl"/>
              <conn port="y" signal="acc_d"/>
            </cell>
            <cell name="acc" kind="reg">
              <param key="width" value="16"/>
              <conn port="clk" signal="clk"/>
              <conn port="d" signal="acc_d"/>
              <conn port="q" signal="acc_q"/>
              <conn port="en" signal="acc_en"/>
            </cell>
          </cells>
          <interface>
            <control signal="acc_en" width="1"/>
            <control signal="acc_sel" width="1"/>
            <control signal="done" width="1"/>
          </interface>
        </datapath>
    "#;
    let fsm_xml = r#"
        <fsm name="doubler_ctrl" initial="load">
          <inputs/>
          <outputs>
            <output signal="acc_en" width="1"/>
            <output signal="acc_sel" width="1"/>
            <output signal="done" width="1"/>
          </outputs>
          <states>
            <state name="load">
              <assert output="acc_en" value="1"/>
              <assert output="acc_sel" value="0"/>
              <transition target="d1"/>
            </state>
            <state name="d1">
              <assert output="acc_en" value="1"/>
              <assert output="acc_sel" value="1"/>
              <transition target="d2"/>
            </state>
            <state name="d2">
              <assert output="acc_en" value="1"/>
              <assert output="acc_sel" value="1"/>
              <transition target="d3"/>
            </state>
            <state name="d3">
              <assert output="acc_en" value="1"/>
              <assert output="acc_sel" value="1"/>
              <transition target="fin"/>
            </state>
            <state name="fin" terminal="true">
              <assert output="done" value="1"/>
            </state>
          </states>
        </fsm>
    "#;
    let dp_doc = Document::parse(datapath_xml).unwrap();
    let fsm_doc = Document::parse(fsm_xml).unwrap();
    let mut cs = elaborate_config(&dp_doc, &fsm_doc).expect("hand-written design elaborates");
    let summary = cs.sim.run(SimTime(10_000)).unwrap();
    assert!(matches!(summary.outcome, RunOutcome::Stopped(_)));
    let acc = cs.sim.find_signal("acc_q").unwrap();
    assert_eq!(cs.sim.value(acc).as_i64(), 40, "5 doubled three times");
    assert!(cs.sim.value(cs.done).is_true());
}
